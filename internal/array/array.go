// Package array implements a striped multi-device composite behind
// the device.Dev contract: one logical block device over N simulated
// sleds, striping at segment granularity with rotated Reed–Solomon
// parity across members, degraded reads that reconstruct lost or
// unreadable blocks from parity, and self-healing repair (replace a
// lost member, replace a tampered heated line) — the FAST'08 design
// scaled past the single-sled ceiling along the classic striped-LFS
// lineage (Zebra: log striping over RAID-style parity, with the
// controller buffering full write deltas so parity updates never
// read-modify-write the media).
//
// Address space. Global block g lives in stripe gs = g/SU (SU =
// StripeBlocks), at offset g%SU. Stripe rows rotate parity RAID-5
// style: row k (the k-th stripe unit on every member) dedicates
// members (k+i) mod N, i < P, to parity; the remaining D = N−P
// members carry data stripes k·D … k·D+D−1 in ascending member order.
// A width-1 array (N=1, P=0) is the identity mapping over its single
// member, and every operation delegates wholesale — byte-identical
// layout and virtual time with the raw device by construction (the
// fourth system-wide contract, ARCHITECTURE.md).
//
// Virtual time. Each member keeps its own clock (per-member
// foreground ops sum, exactly as on a raw device); the array's shared
// clock is raised to the furthest member clock after every operation
// (sim.Clock.AdvanceTo). N sleds are N actuators: operations landing
// on different members overlap, and an array operation costs its
// slowest member — the same slowest-worker contract that governs
// worker planes inside one device, lifted across devices.
//
// Parity. Every magnetic payload the array commits is mirrored in
// controller memory (the write-delta buffer), so a data write updates
// parity purely with writes: delta = old XOR new, each parity member's
// block at the same (row, offset) absorbs coef·delta, and dirty parity
// blocks flush as batched runs after the data lands. Heat records are
// electrical and excluded; heated lines' member blocks stay magnetic
// and stay covered. The window between a data write and its parity
// flush is the classic parity write hole: crash recovery replays the
// logical write stream through a fresh array, regenerating parity
// consistently (the md-style resync assumption; the lfs layer's acked
// durability is unaffected because unacked tails roll back anyway).
package array

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sero/internal/device"
	"sero/internal/ecc"
	"sero/internal/sim"
	"sero/internal/trace"
)

// TrackStride is the trace-track offset between members: member m's
// device emits spans on tracks [m·TrackStride, (m+1)·TrackStride).
const TrackStride = 32

// Params configure an array.
type Params struct {
	// StripeBlocks is the stripe unit in blocks (a power of two,
	// normally the file system's SegmentBlocks so one segment maps to
	// exactly one (member, local segment)).
	StripeBlocks int
	// Parity is the number of parity members P; the array survives up
	// to P simultaneous member losses. 0 ≤ P < N.
	Parity int
}

// Array-level errors.
var (
	// ErrGeometry reports invalid construction parameters.
	ErrGeometry = errors.New("array: invalid geometry")
	// ErrMemberFailed reports an operation that needs a member marked
	// failed (writes degrade gracefully; heats and verifies cannot).
	ErrMemberFailed = errors.New("array: member failed")
	// ErrTooManyFailures reports a reconstruction with more erasures
	// than parity members.
	ErrTooManyFailures = errors.New("array: more failures than parity can reconstruct")
	// ErrNotStripable reports a line that would cross a stripe-unit
	// boundary (lines must fit inside one member's stripe unit).
	ErrNotStripable = errors.New("array: line crosses a stripe-unit boundary")
)

// lineEntry is the array's registry view of one heated line.
type lineEntry struct {
	member int
	local  uint64
	logN   uint8
}

// Array is the striped composite. It implements device.Dev.
type Array struct {
	members []*device.Device
	mp      []device.Params // member construction params, for rebuilds
	su      int             // stripe unit in blocks
	n, p, d int
	rows    int // stripe rows per member
	blocks  int // global capacity in blocks

	clock *sim.Clock
	conc  atomic.Int32

	codec *ecc.Codec // nil when p == 0
	coef  [][]byte   // coef[dcol][j]: data column dcol's weight in parity j

	// mu guards mirror, written, pending, failed, lines and counters.
	// Rule: no member device I/O is ever issued under mu.
	mu      sync.Mutex
	mirror  [][][]byte // [member][local pba] → last committed payload (nil = never written)
	written [][]bool
	pending []map[uint64]bool // [member] → dirty parity blocks awaiting flush
	failed  []bool
	lines   map[uint64]lineEntry // global line start → placement
	cnt     counters
	// scanFindings are parity-territory anomalies from the last Scan.
	scanFindings []ScanFinding

	// flushMu serialises parity flushes per member so an older copy of
	// a parity block can never land after a newer one.
	flushMu []sync.Mutex

	wobs   atomic.Pointer[device.WriteObserver]
	robs   atomic.Pointer[device.ReadObserver]
	tracer atomic.Pointer[trace.Tracer]
}

// counters are the array's own statistics (device OpStats aggregate
// separately via Stats).
type counters struct {
	degradedReads  uint64
	reconstructed  uint64
	parityWrites   uint64
	repairedLines  uint64
	repairedMember uint64
}

var _ device.Dev = (*Array)(nil)

// New builds an array over the given members. All members must have
// the same block count, a multiple of p.StripeBlocks. The array
// installs its own write/read observers on every member (mirroring and
// parity depend on them); client observers go through
// SetWriteObserver/SetReadObserver on the array.
func New(members []*device.Device, p Params) (*Array, error) {
	n := len(members)
	if n < 1 {
		return nil, fmt.Errorf("%w: no members", ErrGeometry)
	}
	if p.Parity < 0 || p.Parity >= n {
		return nil, fmt.Errorf("%w: parity %d with %d members", ErrGeometry, p.Parity, n)
	}
	if n > 255 {
		return nil, fmt.Errorf("%w: %d members exceed the GF(2^8) codeword", ErrGeometry, n)
	}
	su := p.StripeBlocks
	if su <= 0 || su&(su-1) != 0 {
		return nil, fmt.Errorf("%w: stripe unit %d not a positive power of two", ErrGeometry, su)
	}
	mb := members[0].Blocks()
	for i, m := range members {
		if m.Blocks() != mb {
			return nil, fmt.Errorf("%w: member %d has %d blocks, member 0 has %d", ErrGeometry, i, m.Blocks(), mb)
		}
	}
	if mb%su != 0 {
		return nil, fmt.Errorf("%w: member capacity %d not a multiple of stripe unit %d", ErrGeometry, mb, su)
	}
	a := &Array{
		members: members,
		su:      su,
		n:       n,
		p:       p.Parity,
		d:       n - p.Parity,
		rows:    mb / su,
		clock:   &sim.Clock{},
		mirror:  make([][][]byte, n),
		written: make([][]bool, n),
		pending: make([]map[uint64]bool, n),
		failed:  make([]bool, n),
		lines:   make(map[uint64]lineEntry),
		flushMu: make([]sync.Mutex, n),
	}
	a.blocks = a.rows * a.d * a.su
	a.conc.Store(int32(members[0].Concurrency()))
	a.mp = make([]device.Params, n)
	for i, m := range members {
		a.mp[i] = m.Params()
	}
	for i := range members {
		a.mirror[i] = make([][]byte, mb)
		a.written[i] = make([]bool, mb)
		a.pending[i] = make(map[uint64]bool)
	}
	if a.p > 0 {
		a.codec = ecc.NewCodec(a.p)
		if a.d > a.codec.MaxData() {
			return nil, fmt.Errorf("%w: %d data members exceed codec capacity", ErrGeometry, a.d)
		}
		a.coef = make([][]byte, a.d)
		for dcol := 0; dcol < a.d; dcol++ {
			msg := make([]byte, a.d)
			msg[dcol] = 1
			cw := a.codec.Encode(msg)
			a.coef[dcol] = append([]byte(nil), cw[a.d:]...)
		}
	}
	for i := range members {
		a.hookMember(i)
	}
	return a, nil
}

// Build constructs n fresh members from dp (each given a disjoint
// trace-track range) and assembles them into an array.
func Build(n int, dp device.Params, p Params) (*Array, error) {
	members := make([]*device.Device, n)
	for i := 0; i < n; i++ {
		mp := dp
		mp.TrackOffset = int32(i) * TrackStride
		members[i] = device.New(mp)
	}
	return New(members, p)
}

// hookMember installs the array's observers on member m.
func (a *Array) hookMember(m int) {
	mi := m
	a.members[m].SetWriteObserver(func(lpba uint64, data []byte) {
		a.onMemberWrite(mi, lpba, data)
	})
	a.members[m].SetReadObserver(func(lpba uint64) {
		if fn := a.robs.Load(); fn != nil {
			if g, ok := a.globalOf(mi, lpba); ok {
				(*fn)(g)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Mapping.

// parityMember reports whether member m carries parity for row, and
// its parity index if so.
func (a *Array) parityMember(row int, m int) (int, bool) {
	if a.p == 0 {
		return 0, false
	}
	j := (m - row%a.n + a.n) % a.n
	if j < a.p {
		return j, true
	}
	return 0, false
}

// dataMember returns the member carrying data column dcol of row.
func (a *Array) dataMember(row, dcol int) int {
	if a.p == 0 {
		return dcol
	}
	first := (row%a.n + a.p) % a.n // first non-parity member
	return (first + dcol) % a.n
}

// dataColumn returns member m's data column in row (m must not be a
// parity member of the row).
func (a *Array) dataColumn(row, m int) int {
	if a.p == 0 {
		return m
	}
	first := (row%a.n + a.p) % a.n
	return (m - first + a.n) % a.n
}

// locate maps a global block to its (member, local pba, row, data
// column).
func (a *Array) locate(g uint64) (m int, lpba uint64, row, dcol int) {
	su := uint64(a.su)
	gs := g / su
	off := g % su
	row = int(gs / uint64(a.d))
	dcol = int(gs % uint64(a.d))
	m = a.dataMember(row, dcol)
	lpba = uint64(row)*su + off
	return m, lpba, row, dcol
}

// globalOf maps a member-local block back to its global address; ok is
// false for parity territory.
func (a *Array) globalOf(m int, lpba uint64) (uint64, bool) {
	su := uint64(a.su)
	row := int(lpba / su)
	off := lpba % su
	if _, isP := a.parityMember(row, m); isP {
		return 0, false
	}
	dcol := a.dataColumn(row, m)
	return (uint64(row)*uint64(a.d)+uint64(dcol))*su + off, true
}

// cwPos returns member m's codeword position in row: data columns
// occupy positions 0..D-1, parity j occupies D+j.
func (a *Array) cwPos(row, m int) int {
	if j, isP := a.parityMember(row, m); isP {
		return a.d + j
	}
	return a.dataColumn(row, m)
}

// splitRun cuts the global run [start, start+len(blocks)) at stripe
// boundaries into member-local runs, in global order.
type memberRun struct {
	member int
	run    device.WriteRun
}

func (a *Array) splitRun(start uint64, blocks [][]byte) []memberRun {
	var out []memberRun
	su := uint64(a.su)
	for len(blocks) > 0 {
		m, lpba, _, _ := a.locate(start)
		room := int(su - start%su)
		if room > len(blocks) {
			room = len(blocks)
		}
		out = append(out, memberRun{member: m, run: device.WriteRun{Start: lpba, Blocks: blocks[:room]}})
		start += uint64(room)
		blocks = blocks[room:]
	}
	return out
}

// checkRange validates a global range.
func (a *Array) checkRange(start uint64, n int) error {
	if start+uint64(n) > uint64(a.blocks) {
		return fmt.Errorf("array: range [%d,%d) beyond %d blocks", start, start+uint64(n), a.blocks)
	}
	return nil
}

// ---------------------------------------------------------------------
// Geometry, clocks, stats, observability.

// Blocks returns the global capacity: rows × D × stripe unit.
func (a *Array) Blocks() int { return a.blocks }

// Members returns the member count.
func (a *Array) Members() int { return a.n }

// ParityMembers returns the parity member count P.
func (a *Array) ParityMembers() int { return a.p }

// StripeBlocks returns the stripe unit.
func (a *Array) StripeBlocks() int { return a.su }

// MemberDevice exposes member m's raw device (adversary access in
// campaigns, per-member findings in serofsck). The returned device's
// addresses are member-local.
func (a *Array) MemberDevice(m int) *device.Device { return a.members[m] }

// Locate translates a global block address to (member, local pba) —
// the per-sled view tools need for per-device findings.
func (a *Array) Locate(g uint64) (member int, lpba uint64) {
	m, l, _, _ := a.locate(g)
	return m, l
}

// Clock returns the array's shared clock: the furthest member clock
// as of the last completed operation.
func (a *Array) Clock() *sim.Clock { return a.clock }

// syncClock raises the shared clock to the furthest member timeline.
func (a *Array) syncClock() {
	for _, m := range a.members {
		a.clock.AdvanceTo(m.Clock().Now())
	}
}

// Concurrency returns the configured fan-out width.
func (a *Array) Concurrency() int { return int(a.conc.Load()) }

// SetConcurrency sets the fan-out width on the array and every member.
func (a *Array) SetConcurrency(k int) {
	if k < 1 {
		k = 1
	}
	a.conc.Store(int32(k))
	for _, m := range a.members {
		m.SetConcurrency(k)
	}
}

// Stats returns the sum of member operation stats.
func (a *Array) Stats() device.OpStats {
	var out device.OpStats
	for _, m := range a.members {
		st := m.Stats()
		out.MagneticReads += st.MagneticReads
		out.MagneticWrites += st.MagneticWrites
		out.ElectricReads += st.ElectricReads
		out.ElectricWrites += st.ElectricWrites
		out.HeatLines += st.HeatLines
		out.VerifyLines += st.VerifyLines
		out.CorrectedBytes += st.CorrectedBytes
		out.MagneticReadNS += st.MagneticReadNS
		out.MagneticWriteNS += st.MagneticWriteNS
		out.ElectricReadNS += st.ElectricReadNS
		out.ElectricWriteNS += st.ElectricWriteNS
	}
	return out
}

// ResetStats clears member operation stats and the array counters.
func (a *Array) ResetStats() {
	for _, m := range a.members {
		m.ResetStats()
	}
	a.mu.Lock()
	a.cnt = counters{}
	a.mu.Unlock()
}

// Tracer returns the installed tracer.
func (a *Array) Tracer() *trace.Tracer { return a.tracer.Load() }

// SetTracer installs t on the array and every member (members emit on
// disjoint track ranges via their TrackOffset).
func (a *Array) SetTracer(t *trace.Tracer) {
	if t == nil {
		a.tracer.Store(nil)
	} else {
		a.tracer.Store(t)
	}
	for _, m := range a.members {
		m.SetTracer(t)
	}
}

// SetWriteObserver installs the client's committed-write tap. It sees
// global data writes only — parity maintenance is the array's
// internal bookkeeping, regenerated on any replay of the data stream.
func (a *Array) SetWriteObserver(fn device.WriteObserver) {
	if fn == nil {
		a.wobs.Store(nil)
		return
	}
	a.wobs.Store(&fn)
}

// SetReadObserver installs the client's read tap (global addresses,
// data territory only).
func (a *Array) SetReadObserver(fn device.ReadObserver) {
	if fn == nil {
		a.robs.Store(nil)
		return
	}
	a.robs.Store(&fn)
}

// ---------------------------------------------------------------------
// Mirror and parity bookkeeping.

// onMemberWrite is the array's member write observer: every committed
// magnetic write on any member lands here, under that member's write
// locks. Data-territory writes update the mirror, fold their delta
// into the parity mirrors, and forward to the client observer; parity
// territory is ignored (the parity mirror is maintained exclusively by
// the delta path, so a flushed value can never stomp a newer delta).
func (a *Array) onMemberWrite(m int, lpba uint64, data []byte) {
	row := int(lpba / uint64(a.su))
	if _, isP := a.parityMember(row, m); isP {
		a.mu.Lock()
		a.written[m][lpba] = true
		a.mu.Unlock()
		return
	}
	a.mu.Lock()
	a.applyDataWriteLocked(m, lpba, row, data)
	fn := a.wobs.Load()
	var g uint64
	if fn != nil {
		g, _ = a.globalOf(m, lpba)
	}
	a.mu.Unlock()
	if fn != nil {
		(*fn)(g, data)
	}
}

// applyDataWriteLocked folds one committed data write into the mirror
// and the parity mirrors. Caller holds a.mu.
func (a *Array) applyDataWriteLocked(m int, lpba uint64, row int, data []byte) {
	old := a.mirror[m][lpba]
	if a.p > 0 {
		dcol := a.dataColumn(row, m)
		for j := 0; j < a.p; j++ {
			pm := (row%a.n + j) % a.n
			c := a.coef[dcol][j]
			pv := a.mirror[pm][lpba]
			if pv == nil {
				pv = make([]byte, device.DataBytes)
				a.mirror[pm][lpba] = pv
			}
			if old == nil {
				for b := range data {
					pv[b] ^= ecc.Mul(c, data[b])
				}
			} else {
				for b := range data {
					pv[b] ^= ecc.Mul(c, old[b]^data[b])
				}
			}
			a.pending[pm][lpba] = true
		}
	}
	cp := a.mirror[m][lpba]
	if cp == nil {
		cp = make([]byte, device.DataBytes)
		a.mirror[m][lpba] = cp
	}
	copy(cp, data)
	a.written[m][lpba] = true
}

// applyFailedWrite records a data write targeted at a failed member:
// no device I/O, but the mirror and parity absorb it (so the write is
// reconstructable — zero acked-write loss through a degraded window)
// and the client observer still sees it.
func (a *Array) applyFailedWrite(m int, lpba uint64, data []byte) {
	row := int(lpba / uint64(a.su))
	a.mu.Lock()
	a.applyDataWriteLocked(m, lpba, row, data)
	fn := a.wobs.Load()
	var g uint64
	if fn != nil {
		g, _ = a.globalOf(m, lpba)
	}
	a.mu.Unlock()
	if fn != nil {
		(*fn)(g, data)
	}
}

// flushParity writes every dirty parity block as batched runs on its
// member. flushMu serialises flushes per member: the pending set and
// the values are captured under it, so device write order matches
// mirror order.
func (a *Array) flushParity(task *trace.Task) {
	if a.p == 0 {
		return
	}
	for pm := 0; pm < a.n; pm++ {
		a.mu.Lock()
		dirty := len(a.pending[pm]) > 0
		a.mu.Unlock()
		if !dirty {
			continue
		}
		a.flushMember(task, pm)
	}
}

// flushMember drains member pm's dirty parity blocks.
func (a *Array) flushMember(task *trace.Task, pm int) {
	a.flushMu[pm].Lock()
	defer a.flushMu[pm].Unlock()
	a.mu.Lock()
	if len(a.pending[pm]) == 0 {
		a.mu.Unlock()
		return
	}
	pbas := make([]uint64, 0, len(a.pending[pm]))
	for lpba := range a.pending[pm] {
		pbas = append(pbas, lpba)
	}
	sort.Slice(pbas, func(i, j int) bool { return pbas[i] < pbas[j] })
	vals := make([][]byte, len(pbas))
	for i, lpba := range pbas {
		vals[i] = append([]byte(nil), a.mirror[pm][lpba]...)
		delete(a.pending[pm], lpba)
		a.written[pm][lpba] = true
	}
	failed := a.failed[pm]
	a.cnt.parityWrites += uint64(len(pbas))
	a.mu.Unlock()
	if failed {
		return // mirror holds the truth; the rebuild rewrites it
	}
	var runs []device.WriteRun
	for i := 0; i < len(pbas); {
		j := i + 1
		for j < len(pbas) && pbas[j] == pbas[j-1]+1 {
			j++
		}
		runs = append(runs, device.WriteRun{Start: pbas[i], Blocks: vals[i:j]})
		i = j
	}
	errs := a.members[pm].WriteRunsFannedTraced(task, runs, a.Concurrency())
	for _, err := range errs {
		if err != nil {
			// Parity landing on a bad block is survivable — the
			// mirror still covers it and a scrub can relocate — but
			// it should never happen on an honestly operated member.
			panic(fmt.Sprintf("array: parity flush refused on member %d: %v", pm, err))
		}
	}
}

// ---------------------------------------------------------------------
// Magnetic block I/O.

// MRS reads one global block, reconstructing from parity when the
// member is failed or unreadable.
func (a *Array) MRS(pba uint64) ([]byte, error) { return a.MRSTraced(nil, pba) }

// MRSTraced is MRS with trace attribution.
func (a *Array) MRSTraced(task *trace.Task, pba uint64) ([]byte, error) {
	if err := a.checkRange(pba, 1); err != nil {
		return nil, err
	}
	m, lpba, _, _ := a.locate(pba)
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if !failed {
		buf, err := a.members[m].MRSTraced(task, lpba)
		if err == nil {
			a.syncClock()
			return buf, nil
		}
		if a.p == 0 {
			a.syncClock()
			return nil, err
		}
	}
	buf, err := a.reconstructBlock(task, m, lpba)
	a.syncClock()
	return buf, err
}

// WriteBlocks writes a contiguous global run, splitting it at stripe
// boundaries.
func (a *Array) WriteBlocks(start uint64, blocks [][]byte) error {
	return a.WriteBlocksTraced(nil, start, blocks)
}

// WriteBlocksTraced is WriteBlocks with trace attribution. A run that
// spans members commits per member (each sub-run atomic on its sled);
// runs within one stripe unit keep the raw device's whole-run
// atomicity.
func (a *Array) WriteBlocksTraced(task *trace.Task, start uint64, blocks [][]byte) error {
	if err := a.checkRange(start, len(blocks)); err != nil {
		return err
	}
	if a.n == 1 {
		// Width 1 is the identity mapping: delegate the whole call so
		// the member sees the exact run (one settle, one stream) the
		// raw device would — byte-identical layout and virtual time.
		err := a.members[0].WriteBlocksTraced(task, start, blocks)
		a.syncClock()
		return err
	}
	for _, mr := range a.splitRun(start, blocks) {
		a.mu.Lock()
		failed := a.failed[mr.member]
		a.mu.Unlock()
		if failed {
			for i, b := range mr.run.Blocks {
				a.applyFailedWrite(mr.member, mr.run.Start+uint64(i), b)
			}
			continue
		}
		if err := a.members[mr.member].WriteBlocksTraced(task, mr.run.Start, mr.run.Blocks); err != nil {
			a.flushParity(task)
			a.syncClock()
			return err
		}
	}
	a.flushParity(task)
	a.syncClock()
	return nil
}

// WriteRunsFanned commits independent write runs across members.
func (a *Array) WriteRunsFanned(runs []device.WriteRun, workers int) []error {
	return a.WriteRunsFannedTraced(nil, runs, workers)
}

// WriteRunsFannedTraced fans the runs twice: across members (distinct
// sleds overlap on their own clocks) and, per member, across its
// worker planes. Run order is preserved within each member, so the
// width-1 array delegates the exact call.
func (a *Array) WriteRunsFannedTraced(task *trace.Task, runs []device.WriteRun, workers int) []error {
	if a.n == 1 {
		// Identity mapping: the member must see the exact run list so
		// its worker-plane partition matches the raw device's.
		errs := a.members[0].WriteRunsFannedTraced(task, runs, workers)
		a.syncClock()
		return errs
	}
	errs := make([]error, len(runs))
	type sub struct {
		runIdx int
		run    device.WriteRun
	}
	perMember := make([][]sub, a.n)
	for i, r := range runs {
		if err := a.checkRange(r.Start, len(r.Blocks)); err != nil {
			errs[i] = err
			continue
		}
		for _, mr := range a.splitRun(r.Start, r.Blocks) {
			perMember[mr.member] = append(perMember[mr.member], sub{runIdx: i, run: mr.run})
		}
	}
	for m := 0; m < a.n; m++ {
		subs := perMember[m]
		if len(subs) == 0 {
			continue
		}
		a.mu.Lock()
		failed := a.failed[m]
		a.mu.Unlock()
		if failed {
			for _, s := range subs {
				for i, b := range s.run.Blocks {
					a.applyFailedWrite(m, s.run.Start+uint64(i), b)
				}
			}
			continue
		}
		mruns := make([]device.WriteRun, len(subs))
		for i, s := range subs {
			mruns[i] = s.run
		}
		merrs := a.members[m].WriteRunsFannedTraced(task, mruns, workers)
		for i, err := range merrs {
			if err != nil && errs[subs[i].runIdx] == nil {
				errs[subs[i].runIdx] = err
			}
		}
	}
	a.flushParity(task)
	a.syncClock()
	return errs
}

// ReadBlocksFanned reads the given global blocks, fanning per member
// and reconstructing unreadable blocks from parity.
func (a *Array) ReadBlocksFanned(pbas []uint64, workers int) ([][]byte, []error) {
	if a.n == 1 {
		bufs, errs := a.members[0].ReadBlocksFanned(pbas, workers)
		a.syncClock()
		return bufs, errs
	}
	bufs := make([][]byte, len(pbas))
	errs := make([]error, len(pbas))
	type slot struct {
		idx  int
		lpba uint64
	}
	perMember := make([][]slot, a.n)
	for i, g := range pbas {
		if err := a.checkRange(g, 1); err != nil {
			errs[i] = err
			continue
		}
		m, lpba, _, _ := a.locate(g)
		perMember[m] = append(perMember[m], slot{idx: i, lpba: lpba})
	}
	for m := 0; m < a.n; m++ {
		slots := perMember[m]
		if len(slots) == 0 {
			continue
		}
		a.mu.Lock()
		failed := a.failed[m]
		a.mu.Unlock()
		if failed {
			for _, s := range slots {
				bufs[s.idx], errs[s.idx] = a.reconstructBlock(nil, m, s.lpba)
			}
			continue
		}
		lp := make([]uint64, len(slots))
		for i, s := range slots {
			lp[i] = s.lpba
		}
		mbufs, merrs := a.members[m].ReadBlocksFanned(lp, workers)
		for i, s := range slots {
			if merrs[i] != nil && a.p > 0 {
				mbufs[i], merrs[i] = a.reconstructBlock(nil, m, s.lpba)
			}
			bufs[s.idx], errs[s.idx] = mbufs[i], merrs[i]
		}
	}
	a.syncClock()
	return bufs, errs
}

// MoveGroups relocates groups of blocks (the cleaner's engine). The
// width-1 array delegates the whole call; wider arrays run each group
// through the global read/write paths so moves may cross members, with
// the raw device's prefix-completion semantics per group.
func (a *Array) MoveGroups(groups [][]device.BlockMove, workers int) []device.MoveResult {
	if a.n == 1 {
		res := a.members[0].MoveGroups(groups, workers)
		a.syncClock()
		return res
	}
	out := make([]device.MoveResult, len(groups))
	for gi, moves := range groups {
		out[gi] = a.moveGroup(moves)
	}
	a.flushParity(nil)
	a.syncClock()
	return out
}

// moveGroup relocates one group, chunked by consecutive destinations
// exactly like the raw device's engine.
func (a *Array) moveGroup(moves []device.BlockMove) device.MoveResult {
	done := 0
	for i := 0; i < len(moves); {
		j := i + 1
		for j < len(moves) && moves[j].Dst == moves[j-1].Dst+1 {
			j++
		}
		chunk := moves[i:j]
		bufs := make([][]byte, len(chunk))
		for k, mv := range chunk {
			buf, err := a.readForMove(mv.Src)
			if err != nil {
				return device.MoveResult{Completed: done, Err: err}
			}
			bufs[k] = buf
		}
		if err := a.writeForMove(chunk[0].Dst, bufs); err != nil {
			return device.MoveResult{Completed: done, Err: err}
		}
		done += len(chunk)
		i = j
	}
	return device.MoveResult{Completed: done}
}

// readForMove reads one global block for relocation (degrading to
// reconstruction when needed).
func (a *Array) readForMove(g uint64) ([]byte, error) {
	if err := a.checkRange(g, 1); err != nil {
		return nil, err
	}
	m, lpba, _, _ := a.locate(g)
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		return a.reconstructBlock(nil, m, lpba)
	}
	buf, err := a.members[m].MRS(lpba)
	if err != nil && a.p > 0 {
		return a.reconstructBlock(nil, m, lpba)
	}
	return buf, err
}

// writeForMove commits one destination run through the split path
// without flushing parity (the caller batches the flush).
func (a *Array) writeForMove(start uint64, blocks [][]byte) error {
	if err := a.checkRange(start, len(blocks)); err != nil {
		return err
	}
	for _, mr := range a.splitRun(start, blocks) {
		a.mu.Lock()
		failed := a.failed[mr.member]
		a.mu.Unlock()
		if failed {
			for i, b := range mr.run.Blocks {
				a.applyFailedWrite(mr.member, mr.run.Start+uint64(i), b)
			}
			continue
		}
		if err := a.members[mr.member].WriteBlocks(mr.run.Start, mr.run.Blocks); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Lines.

// lineSpan validates that the global line [g, g+2^logN) sits inside
// one stripe unit and returns its member placement.
func (a *Array) lineSpan(g uint64, logN uint8) (m int, lpba uint64, err error) {
	n := uint64(1) << logN
	if err := a.checkRange(g, int(n)); err != nil {
		return 0, 0, err
	}
	if int(n) > a.su || g%n != 0 {
		return 0, 0, fmt.Errorf("%w: line [%d,%d) vs stripe unit %d", ErrNotStripable, g, g+n, a.su)
	}
	m, lpba, _, _ = a.locate(g)
	return m, lpba, nil
}

// WriteLineBatch writes a future heated line's member blocks. On a
// failed member the payloads land in the mirror and parity only; the
// line becomes heatable after the member is repaired.
func (a *Array) WriteLineBatch(start uint64, logN uint8, blocks [][]byte) error {
	m, lpba, err := a.lineSpan(start, logN)
	if err != nil {
		return err
	}
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		n := uint64(1) << logN
		zero := make([]byte, device.DataBytes)
		for i := uint64(0); i < n-1; i++ {
			b := zero
			if int(i) < len(blocks) {
				b = blocks[i]
			}
			a.applyFailedWrite(m, lpba+1+i, b)
		}
		a.flushParity(nil)
		a.syncClock()
		return nil
	}
	werr := a.members[m].WriteLineBatch(lpba, logN, blocks)
	a.flushParity(nil)
	a.syncClock()
	return werr
}

// HeatLine freezes the line at global start. The heat record the
// member writes binds member-local addresses (LineInfo.Start is
// translated back to the global space; Record stays the wire truth).
func (a *Array) HeatLine(start uint64, logN uint8) (device.LineInfo, error) {
	m, lpba, err := a.lineSpan(start, logN)
	if err != nil {
		return device.LineInfo{}, err
	}
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		return device.LineInfo{}, fmt.Errorf("%w: member %d holds line %d", ErrMemberFailed, m, start)
	}
	li, herr := a.members[m].HeatLine(lpba, logN)
	if herr != nil {
		a.syncClock()
		return device.LineInfo{}, herr
	}
	a.mu.Lock()
	a.lines[start] = lineEntry{member: m, local: lpba, logN: logN}
	a.mu.Unlock()
	a.syncClock()
	li.Start = start
	return li, nil
}

// translateReport maps a member verify report to global addresses.
func (a *Array) translateReport(m int, rep device.VerifyReport) device.VerifyReport {
	if g, ok := a.globalOf(m, rep.Line.Start); ok {
		rep.Line.Start = g
	}
	for i, pba := range rep.ReadErrors {
		if g, ok := a.globalOf(m, pba); ok {
			rep.ReadErrors[i] = g
		}
	}
	return rep
}

// VerifyLine checks the heated line at global start.
func (a *Array) VerifyLine(start uint64) (device.VerifyReport, error) {
	m, lpba, entry, err := a.lineAt(start)
	if err != nil {
		return device.VerifyReport{}, err
	}
	_ = entry
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		return device.VerifyReport{}, fmt.Errorf("%w: member %d holds line %d", ErrMemberFailed, m, start)
	}
	rep, verr := a.members[m].VerifyLine(lpba)
	a.syncClock()
	return a.translateReport(m, rep), verr
}

// VerifyLineOffClock verifies on a shadow plane (off the foreground
// clock) — the incremental auditor's contract.
func (a *Array) VerifyLineOffClock(start uint64) (device.VerifyReport, time.Duration, error) {
	m, lpba, _, err := a.lineAt(start)
	if err != nil {
		return device.VerifyReport{}, 0, err
	}
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		return device.VerifyReport{}, 0, fmt.Errorf("%w: member %d holds line %d", ErrMemberFailed, m, start)
	}
	rep, shadow, verr := a.members[m].VerifyLineOffClock(lpba)
	return a.translateReport(m, rep), shadow, verr
}

// lineAt resolves a global line start to its member placement, via
// the registry or (for lines recovered by member scans) the mapping.
func (a *Array) lineAt(start uint64) (int, uint64, lineEntry, error) {
	a.mu.Lock()
	entry, ok := a.lines[start]
	a.mu.Unlock()
	if ok {
		return entry.member, entry.local, entry, nil
	}
	if err := a.checkRange(start, 1); err != nil {
		return 0, 0, lineEntry{}, err
	}
	m, lpba, _, _ := a.locate(start)
	return m, lpba, lineEntry{member: m, local: lpba}, nil
}

// VerifyLines fans verification per member (each member fans further
// over its worker planes), preserving input order in the outcomes.
func (a *Array) VerifyLines(starts []uint64, workers int) []device.VerifyOutcome {
	out := make([]device.VerifyOutcome, len(starts))
	type slot struct {
		idx  int
		lpba uint64
	}
	perMember := make([][]slot, a.n)
	for i, g := range starts {
		m, lpba, _, err := a.lineAt(g)
		if err != nil {
			out[i] = device.VerifyOutcome{Err: err}
			continue
		}
		a.mu.Lock()
		failed := a.failed[m]
		a.mu.Unlock()
		if failed {
			out[i] = device.VerifyOutcome{Err: fmt.Errorf("%w: member %d holds line %d", ErrMemberFailed, m, g)}
			continue
		}
		perMember[m] = append(perMember[m], slot{idx: i, lpba: lpba})
	}
	for m := 0; m < a.n; m++ {
		slots := perMember[m]
		if len(slots) == 0 {
			continue
		}
		lp := make([]uint64, len(slots))
		for i, s := range slots {
			lp[i] = s.lpba
		}
		res := a.members[m].VerifyLines(lp, workers)
		for i, s := range slots {
			oc := res[i]
			oc.Report = a.translateReport(m, oc.Report)
			out[s.idx] = oc
		}
	}
	a.syncClock()
	return out
}

// Lines returns the array's heated lines in global address order.
// Lines on failed members are reported from the registry (zero-valued
// records): the evidence is temporarily unreadable, not forgotten.
func (a *Array) Lines() []device.LineInfo {
	var out []device.LineInfo
	seen := make(map[uint64]bool)
	for m, dev := range a.members {
		a.mu.Lock()
		failed := a.failed[m]
		a.mu.Unlock()
		if failed {
			continue
		}
		for _, li := range dev.Lines() {
			if g, ok := a.globalOf(m, li.Start); ok {
				li.Start = g
				out = append(out, li)
				seen[g] = true
			}
		}
	}
	a.mu.Lock()
	for g, e := range a.lines {
		if !seen[g] && a.failed[e.member] {
			out = append(out, device.LineInfo{Start: g, LogN: e.logN})
		}
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ScanFinding is a per-member anomaly a whole-array scan surfaced that
// has no global address (evidence on parity territory).
type ScanFinding struct {
	Member int
	Local  uint64
	Kind   string
}

// Scan recovers the heated-line registry from every live member's
// medium. Data-territory lines translate to global addresses;
// electrical evidence on parity territory is reported per member via
// ScanFindings. Lines previously registered on failed members are
// retained (their media are unreadable until repair, their existence
// is host knowledge worth keeping).
func (a *Array) Scan() (recovered []device.LineInfo, unparseable []uint64, err error) {
	newLines := make(map[uint64]lineEntry)
	var findings []ScanFinding
	for m, dev := range a.members {
		a.mu.Lock()
		failed := a.failed[m]
		a.mu.Unlock()
		if failed {
			continue
		}
		rec, unp, serr := dev.Scan()
		if serr != nil {
			return nil, nil, fmt.Errorf("array: scanning member %d: %w", m, serr)
		}
		for _, li := range rec {
			if g, ok := a.globalOf(m, li.Start); ok {
				local := li.Start
				li.Start = g
				recovered = append(recovered, li)
				newLines[g] = lineEntry{member: m, local: local, logN: li.LogN}
			} else {
				findings = append(findings, ScanFinding{Member: m, Local: li.Start, Kind: "line-on-parity-territory"})
			}
		}
		for _, pba := range unp {
			if g, ok := a.globalOf(m, pba); ok {
				unparseable = append(unparseable, g)
			} else {
				findings = append(findings, ScanFinding{Member: m, Local: pba, Kind: "unparseable-on-parity-territory"})
			}
		}
	}
	a.mu.Lock()
	for g, e := range a.lines {
		if a.failed[e.member] {
			newLines[g] = e
			recovered = append(recovered, device.LineInfo{Start: g, LogN: e.logN})
		}
	}
	a.lines = newLines
	a.scanFindings = findings
	a.mu.Unlock()
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Start < recovered[j].Start })
	sort.Slice(unparseable, func(i, j int) bool { return unparseable[i] < unparseable[j] })
	a.syncClock()
	return recovered, unparseable, nil
}

// ScanFindings returns the per-member anomalies of the last Scan.
func (a *Array) ScanFindings() []ScanFinding {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]ScanFinding(nil), a.scanFindings...)
}

// ShredLine destroys the data of the heated line at global start —
// including its parity shadow, so the destruction is real: a shredded
// line is not reconstructable from the surviving members. The line's
// record remains the tombstone.
func (a *Array) ShredLine(start uint64) (device.ShredReport, error) {
	m, lpba, entry, err := a.lineAt(start)
	if err != nil {
		return device.ShredReport{}, err
	}
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		return device.ShredReport{}, fmt.Errorf("%w: member %d holds line %d", ErrMemberFailed, m, start)
	}
	rep, serr := a.members[m].ShredLine(lpba)
	if serr != nil {
		a.syncClock()
		return rep, serr
	}
	// Scrub the parity shadow: fold a delta to zero for every data
	// block of the line, then drop the mirror copy. Reconstruction of
	// the shredded blocks now yields zeros, not the expired data.
	if a.p > 0 {
		n := uint64(1) << entry.logNOr(rep.Line.LogN)
		row := int(lpba / uint64(a.su))
		zero := make([]byte, device.DataBytes)
		a.mu.Lock()
		for i := lpba + 1; i < lpba+n; i++ {
			if a.mirror[m][i] != nil {
				a.applyDataWriteLocked(m, i, row, zero)
				a.mirror[m][i] = nil
			}
		}
		a.mu.Unlock()
		a.flushParity(nil)
	}
	a.syncClock()
	rep.Line.Start = start
	return rep, nil
}

// logNOr returns the entry's logN, falling back to the report's.
func (e lineEntry) logNOr(logN uint8) uint8 {
	if e.logN != 0 {
		return e.logN
	}
	return logN
}

// SaveImage serialises every member's medium into one container
// (magic "SARR"), preserving the per-sled evidence separately — a
// forensic image of an array is the set of its sleds.
func (a *Array) SaveImage() []byte {
	imgs := make([][]byte, a.n)
	total := 0
	for m, dev := range a.members {
		imgs[m] = dev.SaveImage()
		total += len(imgs[m])
	}
	out := make([]byte, 0, 4+4+4+4+8*a.n+total)
	out = append(out, 'S', 'A', 'R', 'R')
	out = appendU32(out, uint32(a.n))
	out = appendU32(out, uint32(a.p))
	out = appendU32(out, uint32(a.su))
	for _, img := range imgs {
		out = appendU32(out, uint32(len(img)))
	}
	for _, img := range imgs {
		out = append(out, img...)
	}
	return out
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
