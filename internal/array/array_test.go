package array

import (
	"bytes"
	"fmt"
	"testing"

	"sero/internal/device"
	"sero/internal/medium"
)

// quietParams builds deterministic device params (no read noise, no
// crosstalk) so cross-width comparisons are exact.
func quietParams(blocks int) device.Params {
	p := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return p
}

// payload returns a deterministic 512-byte block derived from seed.
func payload(seed uint64) []byte {
	b := make([]byte, device.DataBytes)
	for i := range b {
		b[i] = byte(seed*131 + uint64(i)*7 + 3)
	}
	return b
}

func mustBuild(t *testing.T, n, parity, su, memberBlocks int) *Array {
	t.Helper()
	a, err := Build(n, quietParams(memberBlocks), Params{StripeBlocks: su, Parity: parity})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestGeometryRoundTrip checks the striping map is a bijection between
// the global space and the data territory of the members.
func TestGeometryRoundTrip(t *testing.T) {
	for _, g := range []struct{ n, p int }{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 3}} {
		a := mustBuild(t, g.n, g.p, 8, 64)
		wantBlocks := (64 / 8) * (g.n - g.p) * 8
		if a.Blocks() != wantBlocks {
			t.Fatalf("n=%d p=%d: capacity %d, want %d", g.n, g.p, a.Blocks(), wantBlocks)
		}
		seen := make(map[[2]uint64]bool)
		for gpba := uint64(0); gpba < uint64(a.Blocks()); gpba++ {
			m, lpba, row, _ := a.locate(gpba)
			if _, isP := a.parityMember(row, m); isP {
				t.Fatalf("n=%d p=%d: block %d landed on parity member %d row %d", g.n, g.p, gpba, m, row)
			}
			back, ok := a.globalOf(m, lpba)
			if !ok || back != gpba {
				t.Fatalf("n=%d p=%d: block %d → (%d,%d) → %d ok=%v", g.n, g.p, gpba, m, lpba, back, ok)
			}
			key := [2]uint64{uint64(m), lpba}
			if seen[key] {
				t.Fatalf("n=%d p=%d: (%d,%d) mapped twice", g.n, g.p, m, lpba)
			}
			seen[key] = true
		}
		// Every row dedicates exactly p members to parity.
		for row := 0; row < a.rows; row++ {
			cnt := 0
			for m := 0; m < a.n; m++ {
				if _, isP := a.parityMember(row, m); isP {
					cnt++
				}
			}
			if cnt != g.p {
				t.Fatalf("n=%d p=%d row %d: %d parity members", g.n, g.p, row, cnt)
			}
		}
	}
}

// driveScript runs one mixed op sequence against any Dev.
func driveScript(t *testing.T, d device.Dev) {
	t.Helper()
	mk := func(base, n uint64) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			out[i] = payload(base + uint64(i))
		}
		return out
	}
	if err := d.WriteBlocks(60, mk(1000, 10)); err != nil { // crosses the 64-block stripe unit
		t.Fatal(err)
	}
	errs := d.WriteRunsFanned([]device.WriteRun{
		{Start: 100, Blocks: mk(2000, 5)},
		{Start: 200, Blocks: mk(3000, 3)},
		{Start: 126, Blocks: mk(4000, 4)}, // crosses the boundary at 128
	}, 2)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, pba := range []uint64{60, 69, 102, 127} {
		if _, err := d.MRS(pba); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WriteLineBatch(256, 4, mk(5000, 15)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.HeatLine(256, 4); err != nil {
		t.Fatal(err)
	}
	rep, err := d.VerifyLine(256)
	if err != nil || !rep.OK {
		t.Fatalf("verify: %+v err=%v", rep, err)
	}
	if _, errs := d.ReadBlocksFanned([]uint64{60, 65, 102, 201, 126}, 2); errs != nil {
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	res := d.MoveGroups([][]device.BlockMove{{{Src: 60, Dst: 300}, {Src: 61, Dst: 301}}}, 2)
	if res[0].Err != nil || res[0].Completed != 2 {
		t.Fatalf("moves: %+v", res[0])
	}
}

// TestWidth1Identity: a one-member array is byte-identical — medium
// layout AND virtual time — to a raw device driven with the same ops.
// This is the fourth system-wide contract.
func TestWidth1Identity(t *testing.T) {
	raw := device.New(quietParams(1024))
	arr := mustBuild(t, 1, 0, 64, 1024)

	driveScript(t, raw)
	driveScript(t, arr)

	if rc, ac := raw.Clock().Now(), arr.Clock().Now(); rc != ac {
		t.Fatalf("virtual time diverged: raw %v array %v", rc, ac)
	}
	if !bytes.Equal(raw.SaveImage(), arr.MemberDevice(0).SaveImage()) {
		t.Fatal("medium images diverged at width 1")
	}
	rl, al := raw.Lines(), arr.Lines()
	if len(rl) != len(al) || len(rl) != 1 || rl[0] != al[0] {
		t.Fatalf("lines diverged: raw %+v array %+v", rl, al)
	}
}

// fillArray writes payload(g) to every global block via runs of run
// blocks, returning the written set.
func fillArray(t *testing.T, a *Array, run int) {
	t.Helper()
	for g := 0; g < a.Blocks(); g += run {
		n := run
		if g+n > a.Blocks() {
			n = a.Blocks() - g
		}
		blocks := make([][]byte, n)
		for i := range blocks {
			blocks[i] = payload(uint64(g + i))
		}
		if err := a.WriteBlocks(uint64(g), blocks); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReconstructionAfterMemberLoss: every committed block remains
// readable with up to P members failed, via parity reconstruction.
func TestReconstructionAfterMemberLoss(t *testing.T) {
	for _, g := range []struct{ n, p int }{{3, 1}, {4, 1}, {4, 2}} {
		t.Run(fmt.Sprintf("n%dp%d", g.n, g.p), func(t *testing.T) {
			a := mustBuild(t, g.n, g.p, 8, 64)
			fillArray(t, a, 11)
			for f := 0; f < g.p; f++ {
				if err := a.FailMember(f); err != nil {
					t.Fatal(err)
				}
			}
			for gpba := uint64(0); gpba < uint64(a.Blocks()); gpba++ {
				buf, err := a.MRS(gpba)
				if err != nil {
					t.Fatalf("block %d: %v", gpba, err)
				}
				if !bytes.Equal(buf, payload(gpba)) {
					t.Fatalf("block %d reconstructed wrong", gpba)
				}
			}
			pbas := make([]uint64, a.Blocks())
			for i := range pbas {
				pbas[i] = uint64(i)
			}
			bufs, errs := a.ReadBlocksFanned(pbas, 3)
			for i := range pbas {
				if errs[i] != nil || !bytes.Equal(bufs[i], payload(pbas[i])) {
					t.Fatalf("fanned read of %d wrong (err=%v)", pbas[i], errs[i])
				}
			}
			if st := a.ArrayStats(); st.DegradedReads == 0 {
				t.Fatal("expected degraded reads")
			}
			// One loss beyond parity is reported as uncovered.
			if err := a.FailMember(g.p); err == nil {
				t.Fatal("expected ErrTooManyFailures")
			}
		})
	}
}

// TestDegradedWritesSurviveRepair: writes during a member outage land
// in the parity shadow; RepairMember materialises them on the fresh
// sled — zero acked-write loss.
func TestDegradedWritesSurviveRepair(t *testing.T) {
	a := mustBuild(t, 3, 1, 8, 64)
	fillArray(t, a, 7)
	if err := a.FailMember(1); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything with a shifted pattern while degraded.
	for g := 0; g < a.Blocks(); g++ {
		if err := a.WriteBlocks(uint64(g), [][]byte{payload(uint64(g) + 9000)}); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint64(0); g < uint64(a.Blocks()); g++ {
		buf, err := a.MRS(g)
		if err != nil || !bytes.Equal(buf, payload(g+9000)) {
			t.Fatalf("degraded read of %d wrong (err=%v)", g, err)
		}
	}
	if err := a.RepairMember(1); err != nil {
		t.Fatal(err)
	}
	if a.Failed(1) {
		t.Fatal("member still failed after repair")
	}
	// The fresh sled itself must hold the data — read it directly.
	for g := uint64(0); g < uint64(a.Blocks()); g++ {
		m, lpba, _, _ := a.locate(g)
		if m != 1 {
			continue
		}
		buf, err := a.MemberDevice(1).MRS(lpba)
		if err != nil || !bytes.Equal(buf, payload(g+9000)) {
			t.Fatalf("rebuilt member block %d (global %d) wrong (err=%v)", lpba, g, err)
		}
	}
	if st := a.ArrayStats(); st.RepairedMembers != 1 {
		t.Fatalf("RepairedMembers = %d", st.RepairedMembers)
	}
}

// lineOnMember finds a stripe-aligned global line start that lands on
// the given member.
func lineOnMember(t *testing.T, a *Array, member int, logN uint8) uint64 {
	t.Helper()
	n := uint64(1) << logN
	for g := uint64(0); g+n <= uint64(a.Blocks()); g += n {
		if m, _, _, _ := a.locate(g); m == member {
			return g
		}
	}
	t.Fatalf("no aligned line lands on member %d", member)
	return 0
}

// TestHeatedLineSurvivesMemberRepair: a heated line on a lost member
// is re-established on the fresh sled with the same hash (the hash
// binds addresses and data, both reconstructed exactly).
func TestHeatedLineSurvivesMemberRepair(t *testing.T) {
	a := mustBuild(t, 3, 1, 16, 128)
	g0 := lineOnMember(t, a, 1, 3)
	blocks := make([][]byte, 7)
	for i := range blocks {
		blocks[i] = payload(700 + uint64(i))
	}
	if err := a.WriteLineBatch(g0, 3, blocks); err != nil {
		t.Fatal(err)
	}
	li, err := a.HeatLine(g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FailMember(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.VerifyLine(g0); err == nil {
		t.Fatal("verify should fail while the member is down")
	}
	if err := a.RepairMember(1); err != nil {
		t.Fatal(err)
	}
	rep, err := a.VerifyLine(g0)
	if err != nil || !rep.OK {
		t.Fatalf("verify after repair: %+v err=%v", rep, err)
	}
	if rep.Line.Record.Hash != li.Record.Hash {
		t.Fatal("repaired line hash differs from the original")
	}
	if rep.Line.Start != g0 {
		t.Fatalf("line start %d, want %d", rep.Line.Start, g0)
	}
}

// TestRepairLineAfterTamper: the auditor's repair arm — a forged frame
// in a heated line on a live member is detected by verify and healed
// by RepairLine from parity, restoring data and hash.
func TestRepairLineAfterTamper(t *testing.T) {
	a := mustBuild(t, 3, 1, 16, 128)
	g0 := lineOnMember(t, a, 1, 3)
	blocks := make([][]byte, 7)
	for i := range blocks {
		blocks[i] = payload(800 + uint64(i))
	}
	if err := a.WriteLineBatch(g0, 3, blocks); err != nil {
		t.Fatal(err)
	}
	li, err := a.HeatLine(g0, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Forge a valid-looking frame into the line's second data block,
	// raw on the member medium (no observer — the adversary does not
	// announce writes).
	_, lpba, _, _ := a.locate(g0)
	victim := lpba + 2
	forged := device.ForgedFrameBits(victim, payload(31337))
	base := int(victim) * device.DotsPerBlock
	a.MemberDevice(1).TamperRaw(victim-1, victim+2, func(m *medium.Medium) {
		for i, b := range forged {
			m.MWB(base+i, b)
		}
	})

	rep, err := a.VerifyLine(g0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("tamper not detected")
	}
	li2, err := a.RepairLine(g0)
	if err != nil {
		t.Fatal(err)
	}
	if li2.Record.Hash != li.Record.Hash {
		t.Fatal("repaired hash differs from the original")
	}
	rep, err = a.VerifyLine(g0)
	if err != nil || !rep.OK {
		t.Fatalf("verify after line repair: %+v err=%v", rep, err)
	}
	buf, err := a.MRS(g0 + 2)
	if err != nil || !bytes.Equal(buf, payload(801)) {
		t.Fatalf("healed block wrong (err=%v)", err)
	}
	if st := a.ArrayStats(); st.RepairedLines != 1 {
		t.Fatalf("RepairedLines = %d", st.RepairedLines)
	}
}

// TestShredScrubsParity: a shredded line must not be reconstructable
// from the surviving members — the parity shadow is scrubbed to zeros.
func TestShredScrubsParity(t *testing.T) {
	a := mustBuild(t, 3, 1, 16, 128)
	g0 := lineOnMember(t, a, 1, 3)
	blocks := make([][]byte, 7)
	for i := range blocks {
		blocks[i] = payload(900 + uint64(i))
	}
	if err := a.WriteLineBatch(g0, 3, blocks); err != nil {
		t.Fatal(err)
	}
	if _, err := a.HeatLine(g0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ShredLine(g0); err != nil {
		t.Fatal(err)
	}
	// Reconstruction of the shredded blocks yields zeros, not the
	// expired payloads.
	zero := make([]byte, device.DataBytes)
	for i := uint64(1); i < 8; i++ {
		buf, err := a.reconstructBlock(nil, 1, func() uint64 { _, l, _, _ := a.locate(g0 + i); return l }())
		if err != nil {
			t.Fatalf("reconstruct %d: %v", i, err)
		}
		if !bytes.Equal(buf, zero) {
			t.Fatalf("shredded block %d still reconstructable", i)
		}
	}
}

// TestClockIsSlowestMember: the array clock tracks the furthest member
// timeline, so ops on distinct members overlap in virtual time.
func TestClockIsSlowestMember(t *testing.T) {
	a := mustBuild(t, 2, 0, 8, 64)
	if err := a.WriteBlocks(0, [][]byte{payload(1), payload(2)}); err != nil { // member 0
		t.Fatal(err)
	}
	t0 := a.MemberDevice(0).Clock().Now()
	if a.Clock().Now() != t0 {
		t.Fatalf("array clock %v, member 0 at %v", a.Clock().Now(), t0)
	}
	if err := a.WriteBlocks(8, [][]byte{payload(3)}); err != nil { // member 1
		t.Fatal(err)
	}
	t1 := a.MemberDevice(1).Clock().Now()
	want := t0
	if t1 > want {
		want = t1
	}
	if a.Clock().Now() != want {
		t.Fatalf("array clock %v, want max(%v,%v)", a.Clock().Now(), t0, t1)
	}
}

// TestSaveImageContainer: the forensic image is a parseable container
// of the member images.
func TestSaveImageContainer(t *testing.T) {
	a := mustBuild(t, 3, 1, 8, 64)
	fillArray(t, a, 5)
	img := a.SaveImage()
	if string(img[:4]) != "SARR" {
		t.Fatal("bad magic")
	}
	u32 := func(off int) int {
		return int(img[off]) | int(img[off+1])<<8 | int(img[off+2])<<16 | int(img[off+3])<<24
	}
	if u32(4) != 3 || u32(8) != 1 || u32(12) != 8 {
		t.Fatalf("header n=%d p=%d su=%d", u32(4), u32(8), u32(12))
	}
	off := 16 + 3*4
	for m := 0; m < 3; m++ {
		l := u32(16 + m*4)
		want := a.MemberDevice(m).SaveImage()
		if !bytes.Equal(img[off:off+l], want) {
			t.Fatalf("member %d image mismatch", m)
		}
		off += l
	}
	if off != len(img) {
		t.Fatalf("trailing %d bytes", len(img)-off)
	}
}
