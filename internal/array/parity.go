package array

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/trace"
)

// Reconstruction. A stripe row is, byte column by byte column, one
// RS(D+P, D) codeword: data column dcol contributes codeword position
// dcol, parity member j contributes position D+j (exactly the
// data‖parity layout ecc.Codec.Encode produces, so the coefficient
// table and the erasure decoder agree by construction). Reconstructing
// a member's block reads the surviving members' blocks at the same
// local address — honest, charged magnetic reads on each survivor's
// own timeline — and solves the erasures per byte column with
// ecc.Codec.DecodeErasures. Blocks never committed through the array
// contribute zero columns without a read: the parity mirror never
// folded them, so zeros are exactly what the code saw.

// reconstructBlock rebuilds member m's block at lpba from the other
// members. m itself is always treated as an erasure (failed, or live
// but suspect — RepairLine reconstructs *around* a tampered member).
func (a *Array) reconstructBlock(task *trace.Task, m int, lpba uint64) ([]byte, error) {
	if a.p == 0 {
		return nil, fmt.Errorf("%w: no parity members", ErrTooManyFailures)
	}
	row := int(lpba / uint64(a.su))
	nCW := a.d + a.p

	vals := make([][]byte, nCW)
	erased := []int{a.cwPos(row, m)}
	a.mu.Lock()
	type readReq struct {
		member int
		pos    int
	}
	var reads []readReq
	for mm := 0; mm < a.n; mm++ {
		if mm == m {
			continue
		}
		pos := a.cwPos(row, mm)
		switch {
		case a.failed[mm]:
			erased = append(erased, pos)
		case !a.written[mm][lpba]:
			// Never committed through the array: a zero column.
		default:
			reads = append(reads, readReq{member: mm, pos: pos})
		}
	}
	a.mu.Unlock()
	if len(erased) > a.p {
		return nil, fmt.Errorf("%w: %d erasures, %d parity", ErrTooManyFailures, len(erased), a.p)
	}

	for _, r := range reads {
		buf, err := a.members[r.member].MRSTraced(task, lpba)
		if err != nil {
			erased = append(erased, r.pos)
			if len(erased) > a.p {
				return nil, fmt.Errorf("%w: member %d also unreadable at %d: %v",
					ErrTooManyFailures, r.member, lpba, err)
			}
			continue
		}
		vals[r.pos] = buf
	}

	out := make([]byte, device.DataBytes)
	cw := make([]byte, nCW)
	target := a.cwPos(row, m)
	for b := 0; b < device.DataBytes; b++ {
		for pos := 0; pos < nCW; pos++ {
			if vals[pos] != nil {
				cw[pos] = vals[pos][b]
			} else {
				cw[pos] = 0
			}
		}
		if _, err := a.codec.DecodeErasures(cw, erased); err != nil {
			return nil, fmt.Errorf("array: reconstructing member %d block %d byte %d: %w", m, lpba, b, err)
		}
		out[b] = cw[target]
	}

	a.mu.Lock()
	a.cnt.degradedReads++
	a.cnt.reconstructed++
	a.mu.Unlock()
	return out, nil
}
