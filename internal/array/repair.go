package array

import (
	"fmt"
	"sort"
	"time"

	"sero/internal/device"
)

// Self-healing. Two service actions, two scopes:
//
//   - RepairMember replaces an entire lost sled: a factory-fresh
//     device is commissioned with the dead member's geometry, every
//     block the array ever committed there is reconstructed from the
//     survivors via parity and rewritten, and every heated line the
//     member carried is re-heated so its record is re-established on
//     the new dots (the hash binds (PBA‖data), so intact data
//     reproduces the original hash).
//
//   - RepairLine replaces one tampered heated line on a *live*
//     member: the line's true payloads are reconstructed treating
//     that member as an erasure, and device.ReplaceLine splices fresh
//     media, rewrites and re-heats. This is the repair arm the
//     incremental auditor drives when a background verify finds a
//     tampered line.
//
// Both actions are charged honestly: reconstruction reads land on the
// survivors' clocks, rewrites and re-heats on the repaired member's
// clock (raised to the array's present first — a spare commissioned
// at time T starts working at T, not in the past).

// FailMember marks member m lost: no further I/O is issued to it,
// reads of its blocks reconstruct from parity, and writes directed at
// it land in the parity shadow only (zero acked-write loss while
// degraded). Failing more members than there is parity is allowed —
// the array is then partially unreadable until repairs — but each
// call reports the coverage state.
func (a *Array) FailMember(m int) error {
	if m < 0 || m >= a.n {
		return fmt.Errorf("%w: member %d of %d", ErrGeometry, m, a.n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed[m] {
		return nil
	}
	a.failed[m] = true
	down := 0
	for _, f := range a.failed {
		if f {
			down++
		}
	}
	if down > a.p {
		return fmt.Errorf("%w: %d members down, %d parity", ErrTooManyFailures, down, a.p)
	}
	return nil
}

// Failed reports whether member m is marked lost.
func (a *Array) Failed(m int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return m >= 0 && m < a.n && a.failed[m]
}

// RepairMember commissions a fresh sled for failed member m and
// rebuilds it: every block the array committed on m is reconstructed
// from the survivors and rewritten, then every heated line m carried
// is re-heated. On return the member is live and fully covered again.
func (a *Array) RepairMember(m int) error {
	if m < 0 || m >= a.n {
		return fmt.Errorf("%w: member %d of %d", ErrGeometry, m, a.n)
	}
	a.mu.Lock()
	if !a.failed[m] {
		a.mu.Unlock()
		return fmt.Errorf("array: member %d is not failed", m)
	}
	// Snapshot the rebuild worklist: which blocks were committed, and
	// which of them are parity territory (rebuilt from the parity
	// mirror — which *is* the recomputation over all committed data).
	var lpbas []uint64
	parityVals := make(map[uint64][]byte)
	for lpba, w := range a.written[m] {
		if !w {
			continue
		}
		l := uint64(lpba)
		lpbas = append(lpbas, l)
		row := int(l / uint64(a.su))
		if _, isP := a.parityMember(row, m); isP {
			parityVals[l] = append([]byte(nil), a.mirror[m][l]...)
		}
	}
	var heats []lineEntry
	for _, e := range a.lines {
		if e.member == m {
			heats = append(heats, e)
		}
	}
	a.mu.Unlock()

	// Commission the spare: same geometry, same trace tracks, clock
	// raised to the array's present so the rebuild extends the
	// timeline instead of rewriting history.
	fresh := device.New(a.mp[m])
	fresh.Clock().AdvanceTo(a.clock.Now())
	a.members[m] = fresh
	a.hookMember(m)

	// Reconstruct and rewrite. Data blocks come from the survivors
	// through the erasure decoder (m is still marked failed, so the
	// reconstruction excludes the fresh sled); parity blocks come from
	// the parity mirror. Writes land through the fresh member's fanned
	// write path; its observer re-folds each data block against an
	// identical mirror value — zero deltas, no parity churn.
	vals := make(map[uint64][]byte, len(lpbas))
	for _, lpba := range lpbas {
		if pv, ok := parityVals[lpba]; ok {
			vals[lpba] = pv
			continue
		}
		buf, err := a.reconstructBlock(nil, m, lpba)
		if err != nil {
			return fmt.Errorf("array: rebuilding member %d block %d: %w", m, lpba, err)
		}
		vals[lpba] = buf
	}
	sort.Slice(lpbas, func(i, j int) bool { return lpbas[i] < lpbas[j] })
	var runs []device.WriteRun
	for i := 0; i < len(lpbas); {
		j := i + 1
		for j < len(lpbas) && lpbas[j] == lpbas[j-1]+1 {
			j++
		}
		blocks := make([][]byte, j-i)
		for k := i; k < j; k++ {
			blocks[k-i] = vals[lpbas[k]]
		}
		runs = append(runs, device.WriteRun{Start: lpbas[i], Blocks: blocks})
		i = j
	}
	for _, err := range fresh.WriteRunsFannedTraced(nil, runs, a.Concurrency()) {
		if err != nil {
			return fmt.Errorf("array: rebuild write on member %d refused: %w", m, err)
		}
	}

	// Re-establish the evidence: heat every line the member carried.
	sort.Slice(heats, func(i, j int) bool { return heats[i].local < heats[j].local })
	for _, e := range heats {
		if _, err := fresh.HeatLine(e.local, e.logN); err != nil {
			return fmt.Errorf("array: re-heating line at member %d block %d: %w", m, e.local, err)
		}
	}

	a.mu.Lock()
	a.failed[m] = false
	a.cnt.repairedMember++
	a.mu.Unlock()
	a.syncClock()
	return nil
}

// RepairLine rebuilds the heated line at global start on its (live)
// member: payloads are reconstructed treating the member as an
// erasure, then device.ReplaceLine splices fresh media, rewrites and
// re-heats. Returns the fresh line info (global addresses). This is
// the hook the incremental auditor's repair arm calls on a verify
// failure.
func (a *Array) RepairLine(start uint64) (device.LineInfo, error) {
	a.mu.Lock()
	entry, ok := a.lines[start]
	a.mu.Unlock()
	if !ok {
		return device.LineInfo{}, fmt.Errorf("array: no heated line registered at %d", start)
	}
	m := entry.member
	a.mu.Lock()
	failed := a.failed[m]
	a.mu.Unlock()
	if failed {
		return device.LineInfo{}, fmt.Errorf("%w: member %d holds line %d (repair the member)", ErrMemberFailed, m, start)
	}
	if a.p == 0 {
		return device.LineInfo{}, fmt.Errorf("%w: cannot reconstruct line %d", ErrTooManyFailures, start)
	}
	n := uint64(1) << entry.logN
	payloads := make([][]byte, n-1)
	for i := uint64(0); i < n-1; i++ {
		lpba := entry.local + 1 + i
		a.mu.Lock()
		committed := a.written[m][lpba]
		a.mu.Unlock()
		if !committed {
			continue // zero-filled by ReplaceLine
		}
		buf, err := a.reconstructBlock(nil, m, lpba)
		if err != nil {
			return device.LineInfo{}, fmt.Errorf("array: reconstructing line %d block %d: %w", start, lpba, err)
		}
		payloads[i] = buf
	}
	li, err := a.members[m].ReplaceLine(entry.local, entry.logN, payloads)
	if err != nil {
		a.syncClock()
		return device.LineInfo{}, err
	}
	a.mu.Lock()
	a.cnt.repairedLines++
	a.mu.Unlock()
	a.flushParity(nil)
	a.syncClock()
	li.Start = start
	return li, nil
}

// Stats is the array-level health and accounting snapshot (member
// OpStats aggregate separately via Dev.Stats).
type Stats struct {
	Members      int
	Parity       int
	StripeBlocks int
	Failed       []bool
	// DegradedReads counts reads served via reconstruction.
	DegradedReads uint64
	// ReconstructedBlocks counts blocks rebuilt from parity (degraded
	// reads, member rebuilds and line repairs).
	ReconstructedBlocks uint64
	// ParityBlockWrites counts parity blocks flushed to members.
	ParityBlockWrites uint64
	RepairedLines     uint64
	RepairedMembers   uint64
	// MemberClocks are the per-member virtual timelines; the array
	// clock is their maximum.
	MemberClocks []time.Duration
}

// ArrayStats returns the array-level snapshot.
func (a *Array) ArrayStats() Stats {
	a.mu.Lock()
	s := Stats{
		Members:             a.n,
		Parity:              a.p,
		StripeBlocks:        a.su,
		Failed:              append([]bool(nil), a.failed...),
		DegradedReads:       a.cnt.degradedReads,
		ReconstructedBlocks: a.cnt.reconstructed,
		ParityBlockWrites:   a.cnt.parityWrites,
		RepairedLines:       a.cnt.repairedLines,
		RepairedMembers:     a.cnt.repairedMember,
	}
	a.mu.Unlock()
	s.MemberClocks = make([]time.Duration, a.n)
	for i, m := range a.members {
		s.MemberClocks[i] = m.Clock().Now()
	}
	return s
}
