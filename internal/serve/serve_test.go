package serve

import (
	"bytes"
	"testing"
	"time"

	"sero/internal/workload"
)

// smallConfig returns a serving config sized for unit tests.
func smallConfig(sessions int) Config {
	cfg := DefaultConfig(sessions, 48, 384)
	cfg.SegmentBlocks = 32
	cfg.SyncEvery = 16
	cfg.BurstEvery = 64
	cfg.BurstLen = 8
	return cfg
}

func TestRunSingleSession(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.VirtualNS <= 0 || res.ThroughputOpsPerSec <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	for _, kind := range []string{"create", "write", "read", "rename", "delete", "sync"} {
		st, ok := res.PerOp[kind]
		if !ok || st.Count == 0 {
			t.Errorf("no %s ops recorded", kind)
			continue
		}
		if st.P50NS > st.P99NS || st.P99NS > st.WorstNS {
			t.Errorf("%s percentiles disordered: %+v", kind, st)
		}
	}
	// Syncs carry the device work of the buffered appends they flush.
	if res.PerOp["sync"].WorstNS <= res.PerOp["write"].P50NS {
		t.Errorf("sync worst %d not above buffered-append p50 %d",
			res.PerOp["sync"].WorstNS, res.PerOp["write"].P50NS)
	}
}

// TestRunConcurrentSessions drives read+rename mixes from many
// sessions at once; under -race this is the serving tier's race gate.
func TestRunConcurrentSessions(t *testing.T) {
	for _, sessions := range []int{2, 4, 8} {
		res, err := Run(smallConfig(sessions))
		if err != nil {
			t.Fatalf("sessions=%d: %v", sessions, err)
		}
		if res.TotalOps == 0 {
			t.Fatalf("sessions=%d: no ops", sessions)
		}
		// Total work is partitioned, not duplicated: op totals match the
		// single-session stream count to within churn-degradation noise.
		if res.PerOp["read"].Count == 0 || res.PerOp["rename"].Count == 0 {
			t.Fatalf("sessions=%d: read/rename missing from mix", sessions)
		}
	}
}

// TestRunStreamsDeterministic: the set of generated session streams is
// a pure function of the config — independent of scheduling.
func TestRunStreamsDeterministic(t *testing.T) {
	cfg := smallConfig(3)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalOps != b.TotalOps {
		t.Fatalf("op totals differ across identical runs: %d vs %d", a.TotalOps, b.TotalOps)
	}
	for kind, st := range a.PerOp {
		if b.PerOp[kind].Count != st.Count {
			t.Fatalf("%s count differs: %d vs %d", kind, st.Count, b.PerOp[kind].Count)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no-sessions":    {Sessions: 0, Files: 10},
		"no-files":       {Sessions: 1, Files: 0},
		"overpartition":  {Sessions: 8, Files: 4},
		"zipf-diverges":  {Sessions: 1, Files: 4, ZipfTheta: 1.0},
		"huge-fileblock": {Sessions: 1, Files: 4, FileBlocks: 1 << 20},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReportRoundTripAndValidate(t *testing.T) {
	res, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport([]Result{res})
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(buf.Bytes()); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	back, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].TotalOps != res.TotalOps || back.Runs[0].Config.Seed != res.Config.Seed {
		t.Fatal("round trip lost data")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	good, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Report){
		"schema":     func(r *Report) { r.Schema = "bogus/v0" },
		"no-runs":    func(r *Report) { r.Runs = nil },
		"zero-ops":   func(r *Report) { r.Runs[0].TotalOps = 0 },
		"no-virt":    func(r *Report) { r.Runs[0].VirtualNS = 0 },
		"no-per-op":  func(r *Report) { r.Runs[0].PerOp = nil },
		"count-drop": func(r *Report) { r.Runs[0].TotalOps++ },
		"no-config":  func(r *Report) { r.Runs[0].Config.Seed = 0 },
	}
	for name, mutate := range cases {
		rep := NewReport([]Result{good})
		// Deep-enough copy: PerOp is shared, so rebuild it per case.
		perOp := make(map[string]OpStats, len(good.PerOp))
		for k, v := range good.PerOp {
			perOp[k] = v
		}
		rep.Runs[0].PerOp = perOp
		mutate(&rep)
		if err := rep.Validate(); err == nil {
			t.Errorf("%s: malformed report accepted", name)
		}
	}
	if err := ValidateJSON([]byte("{not json")); err == nil {
		t.Error("garbage bytes accepted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Microsecond)
	}
	if h.count != 1000 {
		t.Fatalf("count %d", h.count)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	if p50 <= 0 || p99 < p50 || h.worst() < p99 {
		t.Fatalf("disordered: p50=%v p99=%v worst=%v", p50, p99, h.worst())
	}
	if h.worst() != 1000*time.Microsecond {
		t.Fatalf("worst %v", h.worst())
	}
	// Log-bucketed rank answers are exact to within a 2x bucket.
	if p50 < 250*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 %v implausible for uniform 1..1000µs", p50)
	}
	var other histogram
	other.record(5 * time.Second)
	h.merge(&other)
	if h.count != 1001 || h.worst() != 5*time.Second {
		t.Fatal("merge lost samples")
	}
	var empty histogram
	if empty.quantile(0.5) != 0 || empty.mean() != 0 {
		t.Fatal("empty histogram nonzero")
	}
}

// TestSessionSeedsDistinct guards the per-session RNG streams: shards
// must not replay each other's randomness.
func TestSessionSeedsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		s := sessionSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at session %d", i)
		}
		seen[s] = true
	}
	_ = workload.DefaultMix(1, 1) // keep the import honest
}

// TestRunStriped serves over a striped array and checks the width-1
// equivalence of the trajectory fields plus the degraded path.
func TestRunStriped(t *testing.T) {
	base := smallConfig(4)
	single, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	wide := base
	wide.Devices = 4
	wide.ParityDevices = 1
	res, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != single.TotalOps {
		t.Fatalf("op streams diverged across widths: %d vs %d", res.TotalOps, single.TotalOps)
	}
	if res.Devices != 4 || res.ParityDevices != 1 || res.Degraded {
		t.Fatalf("array fields wrong: %+v", res)
	}
	if len(res.PerDevice) != 4 {
		t.Fatalf("per-device breakdown missing: %+v", res.PerDevice)
	}
	if res.ParityBlockWrites == 0 {
		t.Fatal("no parity writes recorded")
	}
	var maxClock int64
	for _, ds := range res.PerDevice {
		if ds.ClockNS > maxClock {
			maxClock = ds.ClockNS
		}
		if ds.MagneticWrites == 0 {
			t.Fatalf("member %d never written", ds.Device)
		}
	}
	if maxClock != res.VirtualNS {
		t.Fatalf("VirtualNS %d is not the slowest member clock %d", res.VirtualNS, maxClock)
	}

	deg := wide
	deg.DegradedDevices = 1
	dres, err := Run(deg)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Degraded || dres.TotalOps != single.TotalOps {
		t.Fatalf("degraded run wrong: degraded=%v ops=%d", dres.Degraded, dres.TotalOps)
	}
	if !dres.PerDevice[3].Failed {
		t.Fatal("failed member not flagged in per-device stats")
	}
}

// TestRunWidth1MatchesRawDevice: a one-member array's trajectory is
// byte-identical to the raw device's — virtual time included. One
// session, because multi-session interleaving (and hence cleaning
// order) is schedule-dependent.
func TestRunWidth1MatchesRawDevice(t *testing.T) {
	base := smallConfig(1)
	raw, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	w1 := base
	w1.Devices = 1
	arr, err := Run(w1)
	if err != nil {
		t.Fatal(err)
	}
	if raw.VirtualNS != arr.VirtualNS {
		t.Fatalf("virtual time diverged: raw %d vs width-1 %d", raw.VirtualNS, arr.VirtualNS)
	}
	if raw.TotalOps != arr.TotalOps || raw.BlocksAppended != arr.BlocksAppended ||
		raw.Checkpoints != arr.Checkpoints || raw.JournalRecords != arr.JournalRecords {
		t.Fatalf("trajectories diverged: %+v vs %+v", raw, arr)
	}
}
