package serve

import (
	"testing"

	"sero/internal/trace"
)

// TestTraceReconcilesWithHistograms is the reconciliation property:
// the serve-layer span stream and the report's latency accounting are
// two views of the same measurements, so they must agree exactly —
// per session, the sum of serve span durations equals the session's
// recorded TotalNS; per op kind, the span count equals the
// histogram's count; and every span's own lock-wait (V1) and device
// (V2) charges sum to the session's decomposition.
func TestTraceReconcilesWithHistograms(t *testing.T) {
	for _, sessions := range []int{1, 4} {
		tr := trace.New(trace.DefaultBuffer)
		res, err := RunTraced(smallConfig(sessions), tr)
		if err != nil {
			t.Fatalf("sessions=%d: %v", sessions, err)
		}
		if tr.Dropped() != 0 {
			t.Fatalf("sessions=%d: %d spans dropped — grow the test buffer", sessions, tr.Dropped())
		}

		type sums struct {
			dur, lockWait, device int64
			ops                   uint64
		}
		bySession := make(map[int32]*sums)
		byKind := make(map[string]uint64)
		for _, s := range tr.Spans() {
			if s.Cat != "serve" {
				continue
			}
			ss := bySession[s.Session]
			if ss == nil {
				ss = &sums{}
				bySession[s.Session] = ss
			}
			ss.dur += s.Dur
			ss.lockWait += s.V1
			ss.device += s.V2
			ss.ops++
			byKind[s.Name]++
		}

		if len(bySession) != sessions {
			t.Fatalf("sessions=%d: spans from %d sessions", sessions, len(bySession))
		}
		for _, ps := range res.PerSession {
			got := bySession[int32(ps.Session)]
			if got == nil {
				t.Fatalf("sessions=%d: session %d has stats but no spans", sessions, ps.Session)
			}
			if got.ops != ps.Ops {
				t.Errorf("session %d: %d spans, %d recorded ops", ps.Session, got.ops, ps.Ops)
			}
			if got.dur != ps.TotalNS {
				t.Errorf("session %d: span durations sum to %d, TotalNS says %d",
					ps.Session, got.dur, ps.TotalNS)
			}
			if got.lockWait != ps.LockWaitNS {
				t.Errorf("session %d: span lock-wait sums to %d, LockWaitNS says %d",
					ps.Session, got.lockWait, ps.LockWaitNS)
			}
			if got.device != ps.DeviceNS {
				t.Errorf("session %d: span device sums to %d, DeviceNS says %d",
					ps.Session, got.device, ps.DeviceNS)
			}
			if ps.DeviceNS+ps.LockWaitNS+ps.QueueNS != ps.TotalNS {
				t.Errorf("session %d: decomposition %d+%d+%d != total %d",
					ps.Session, ps.DeviceNS, ps.LockWaitNS, ps.QueueNS, ps.TotalNS)
			}
		}
		for kind, st := range res.PerOp {
			if byKind[kind] != st.Count {
				t.Errorf("kind %s: %d spans, histogram count %d", kind, byKind[kind], st.Count)
			}
		}
	}
}

// TestUntracedRunStillDecomposes: the per-session section is part of
// the measurement, not of tracing — a nil tracer must still produce a
// complete, consistent PerSession slice.
func TestUntracedRunStillDecomposes(t *testing.T) {
	res, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSession) != 2 {
		t.Fatalf("PerSession has %d entries, want 2", len(res.PerSession))
	}
	var ops uint64
	for _, ps := range res.PerSession {
		ops += ps.Ops
		if ps.DeviceNS+ps.LockWaitNS+ps.QueueNS != ps.TotalNS {
			t.Errorf("session %d: decomposition %d+%d+%d != total %d",
				ps.Session, ps.DeviceNS, ps.LockWaitNS, ps.QueueNS, ps.TotalNS)
		}
		if ps.DeviceNS == 0 {
			t.Errorf("session %d: no device time attributed", ps.Session)
		}
	}
	if ops != res.TotalOps {
		t.Fatalf("per-session ops sum to %d, total says %d", ops, res.TotalOps)
	}
}
