package serve

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaV1 is the versioned identifier of the original
// serving-trajectory JSON schema (no per-session section). Validate
// still accepts it so recorded v1 trajectories keep gating.
const SchemaV1 = "sero-serving-bench/v1"

// SchemaV2 extends v1 with the per-session latency decomposition
// (Result.PerSession: own device time vs lock-wait vs queueing).
const SchemaV2 = "sero-serving-bench/v2"

// SchemaV3 extends v2 with the striped-array section: member-device
// count, parity width, degraded flag and the per-device breakdown
// (Result.Devices/ParityDevices/Degraded/PerDevice). NewReport stamps
// v3; Validate accepts all three and applies each section's checks
// only to schemas that carry it.
const SchemaV3 = "sero-serving-bench/v3"

// Report is the BENCH_serving.json trajectory file: one schema tag and
// one Result per session count. Everything needed to re-run the
// identical workload — session count, namespace width, op budget,
// seed, and the full FS configuration — is embedded in each run's
// Config.
type Report struct {
	// Schema identifies the report format (SchemaV1, SchemaV2 or
	// SchemaV3).
	Schema string `json:"schema"`
	// Bench names the benchmark family ("serving").
	Bench string `json:"bench"`
	// Runs holds one measured trajectory point per configuration.
	Runs []Result `json:"runs"`
}

// NewReport assembles a versioned report from measured runs.
func NewReport(runs []Result) Report {
	return Report{Schema: SchemaV3, Bench: "serving", Runs: runs}
}

// Encode writes the report as indented JSON.
func (r Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses a report produced by Encode.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("serve: parsing report: %w", err)
	}
	return r, nil
}

// Validate is the schema sanity check the CI gate runs over committed
// BENCH_*.json files: schema tag, at least one run, and for every run
// a non-zero op count, positive virtual time and throughput, the full
// reproduction config, and per-op latency entries whose percentiles
// are ordered (p50 ≤ p99 ≤ worst) and not all-zero — a kind with ops
// must carry either direct latency or a sync-amortized share, so a
// report whose buffered ops silently lost their flush attribution
// cannot anchor the regression gate.
func (r Report) Validate() error {
	if r.Schema != SchemaV1 && r.Schema != SchemaV2 && r.Schema != SchemaV3 {
		return fmt.Errorf("serve: schema %q, want %q, %q or %q", r.Schema, SchemaV1, SchemaV2, SchemaV3)
	}
	if r.Bench != "serving" {
		return fmt.Errorf("serve: bench %q, want serving", r.Bench)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("serve: report has no runs")
	}
	for i, run := range r.Runs {
		c := run.Config
		if c.Sessions <= 0 || c.Files <= 0 || c.Seed == 0 ||
			c.SegmentBlocks <= 0 || c.CheckpointBlocks <= 0 || c.DeviceBlocks <= 0 ||
			c.CheckpointEvery <= 0 {
			return fmt.Errorf("serve: run %d: incomplete reproduction config %+v", i, c)
		}
		if run.TotalOps == 0 {
			return fmt.Errorf("serve: run %d (sessions=%d): zero op count", i, c.Sessions)
		}
		if run.VirtualNS <= 0 || run.ThroughputOpsPerSec <= 0 {
			return fmt.Errorf("serve: run %d (sessions=%d): no virtual time recorded", i, c.Sessions)
		}
		if len(run.PerOp) == 0 {
			return fmt.Errorf("serve: run %d (sessions=%d): no per-op latency", i, c.Sessions)
		}
		var counted uint64
		for kind, st := range run.PerOp {
			if st.Count == 0 {
				return fmt.Errorf("serve: run %d: op %q has zero count", i, kind)
			}
			if st.P50NS > st.P99NS || st.P99NS > st.WorstNS || st.P50NS < 0 {
				return fmt.Errorf("serve: run %d: op %q percentiles disordered (p50=%d p99=%d worst=%d)",
					i, kind, st.P50NS, st.P99NS, st.WorstNS)
			}
			if st.WorstNS == 0 && st.SyncAmortizedNS == 0 {
				return fmt.Errorf("serve: run %d: op %q has %d ops but all-zero latency (no direct or sync-amortized cost)",
					i, kind, st.Count)
			}
			counted += st.Count
		}
		if counted != run.TotalOps {
			return fmt.Errorf("serve: run %d: per-op counts sum to %d, total says %d", i, counted, run.TotalOps)
		}
		if r.Schema == SchemaV2 || r.Schema == SchemaV3 {
			if len(run.PerSession) != c.Sessions {
				return fmt.Errorf("serve: run %d: %d per-session entries for %d sessions",
					i, len(run.PerSession), c.Sessions)
			}
			var sessOps uint64
			for _, ss := range run.PerSession {
				sessOps += ss.Ops
				if ss.TotalNS < 0 || ss.DeviceNS < 0 || ss.LockWaitNS < 0 || ss.QueueNS < 0 {
					return fmt.Errorf("serve: run %d: session %d has negative latency component", i, ss.Session)
				}
				// Over a striped array, DeviceNS sums member commands
				// that ran in parallel in virtual time, so it can
				// legitimately exceed the shared-clock total — but
				// never by more than the member count.
				devBound := ss.TotalNS
				if c.Devices > 1 {
					devBound = ss.TotalNS * int64(c.Devices)
				}
				if devBound < ss.DeviceNS || ss.TotalNS < ss.LockWaitNS {
					return fmt.Errorf("serve: run %d: session %d decomposition exceeds total (total=%d device=%d lockwait=%d devices=%d)",
						i, ss.Session, ss.TotalNS, ss.DeviceNS, ss.LockWaitNS, c.Devices)
				}
			}
			if sessOps != run.TotalOps {
				return fmt.Errorf("serve: run %d: per-session ops sum to %d, total says %d", i, sessOps, run.TotalOps)
			}
		}
		if r.Schema == SchemaV3 {
			if err := validateArray(i, run); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateArray checks one v3 run's striped-array section: member
// count, parity bound, a complete per-device breakdown for striped
// runs, the slowest-member virtual-time identity, and agreement
// between the degraded flag and the per-device failure marks.
func validateArray(i int, run Result) error {
	if run.Devices < 1 {
		return fmt.Errorf("serve: run %d: device count %d", i, run.Devices)
	}
	if run.ParityDevices < 0 || run.ParityDevices >= run.Devices {
		return fmt.Errorf("serve: run %d: %d parity members of %d devices", i, run.ParityDevices, run.Devices)
	}
	if len(run.PerDevice) == 0 {
		// The raw-device baseline carries no breakdown — legal only at
		// width 1, and never degraded.
		if run.Devices > 1 || run.Degraded {
			return fmt.Errorf("serve: run %d: %d devices (degraded=%v) without per-device breakdown",
				i, run.Devices, run.Degraded)
		}
		return nil
	}
	if len(run.PerDevice) != run.Devices {
		return fmt.Errorf("serve: run %d: %d per-device entries for %d devices",
			i, len(run.PerDevice), run.Devices)
	}
	failed := 0
	var maxClock int64
	for j, ds := range run.PerDevice {
		if ds.Device != j {
			return fmt.Errorf("serve: run %d: per-device entry %d labelled device %d", i, j, ds.Device)
		}
		if ds.ClockNS < 0 {
			return fmt.Errorf("serve: run %d: device %d negative clock", i, j)
		}
		if ds.ClockNS > maxClock {
			maxClock = ds.ClockNS
		}
		if ds.Failed {
			failed++
		}
	}
	if maxClock != run.VirtualNS {
		return fmt.Errorf("serve: run %d: virtual time %d is not the slowest member clock %d (slowest-member contract)",
			i, run.VirtualNS, maxClock)
	}
	if run.Degraded != (failed > 0) {
		return fmt.Errorf("serve: run %d: degraded flag %v disagrees with %d failed members", i, run.Degraded, failed)
	}
	if failed > run.ParityDevices {
		return fmt.Errorf("serve: run %d: %d failed members exceed %d parity", i, failed, run.ParityDevices)
	}
	return nil
}

// ValidateJSON decodes and validates raw report bytes — the one-call
// form tools/benchcheck uses.
func ValidateJSON(data []byte) error {
	r, err := DecodeReport(data)
	if err != nil {
		return err
	}
	return r.Validate()
}
