package serve

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaV1 is the versioned identifier of the original
// serving-trajectory JSON schema (no per-session section). Validate
// still accepts it so recorded v1 trajectories keep gating.
const SchemaV1 = "sero-serving-bench/v1"

// SchemaV2 extends v1 with the per-session latency decomposition
// (Result.PerSession: own device time vs lock-wait vs queueing).
// NewReport stamps v2; Validate accepts both and applies the
// per-session checks only to v2 reports.
const SchemaV2 = "sero-serving-bench/v2"

// Report is the BENCH_serving.json trajectory file: one schema tag and
// one Result per session count. Everything needed to re-run the
// identical workload — session count, namespace width, op budget,
// seed, and the full FS configuration — is embedded in each run's
// Config.
type Report struct {
	// Schema identifies the report format (SchemaV1 or SchemaV2).
	Schema string `json:"schema"`
	// Bench names the benchmark family ("serving").
	Bench string `json:"bench"`
	// Runs holds one measured trajectory point per configuration.
	Runs []Result `json:"runs"`
}

// NewReport assembles a versioned report from measured runs.
func NewReport(runs []Result) Report {
	return Report{Schema: SchemaV2, Bench: "serving", Runs: runs}
}

// Encode writes the report as indented JSON.
func (r Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses a report produced by Encode.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("serve: parsing report: %w", err)
	}
	return r, nil
}

// Validate is the schema sanity check the CI gate runs over committed
// BENCH_*.json files: schema tag, at least one run, and for every run
// a non-zero op count, positive virtual time and throughput, the full
// reproduction config, and per-op latency entries whose percentiles
// are ordered (p50 ≤ p99 ≤ worst) and not all-zero — a kind with ops
// must carry either direct latency or a sync-amortized share, so a
// report whose buffered ops silently lost their flush attribution
// cannot anchor the regression gate.
func (r Report) Validate() error {
	if r.Schema != SchemaV1 && r.Schema != SchemaV2 {
		return fmt.Errorf("serve: schema %q, want %q or %q", r.Schema, SchemaV1, SchemaV2)
	}
	if r.Bench != "serving" {
		return fmt.Errorf("serve: bench %q, want serving", r.Bench)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("serve: report has no runs")
	}
	for i, run := range r.Runs {
		c := run.Config
		if c.Sessions <= 0 || c.Files <= 0 || c.Seed == 0 ||
			c.SegmentBlocks <= 0 || c.CheckpointBlocks <= 0 || c.DeviceBlocks <= 0 ||
			c.CheckpointEvery <= 0 {
			return fmt.Errorf("serve: run %d: incomplete reproduction config %+v", i, c)
		}
		if run.TotalOps == 0 {
			return fmt.Errorf("serve: run %d (sessions=%d): zero op count", i, c.Sessions)
		}
		if run.VirtualNS <= 0 || run.ThroughputOpsPerSec <= 0 {
			return fmt.Errorf("serve: run %d (sessions=%d): no virtual time recorded", i, c.Sessions)
		}
		if len(run.PerOp) == 0 {
			return fmt.Errorf("serve: run %d (sessions=%d): no per-op latency", i, c.Sessions)
		}
		var counted uint64
		for kind, st := range run.PerOp {
			if st.Count == 0 {
				return fmt.Errorf("serve: run %d: op %q has zero count", i, kind)
			}
			if st.P50NS > st.P99NS || st.P99NS > st.WorstNS || st.P50NS < 0 {
				return fmt.Errorf("serve: run %d: op %q percentiles disordered (p50=%d p99=%d worst=%d)",
					i, kind, st.P50NS, st.P99NS, st.WorstNS)
			}
			if st.WorstNS == 0 && st.SyncAmortizedNS == 0 {
				return fmt.Errorf("serve: run %d: op %q has %d ops but all-zero latency (no direct or sync-amortized cost)",
					i, kind, st.Count)
			}
			counted += st.Count
		}
		if counted != run.TotalOps {
			return fmt.Errorf("serve: run %d: per-op counts sum to %d, total says %d", i, counted, run.TotalOps)
		}
		if r.Schema == SchemaV2 {
			if len(run.PerSession) != c.Sessions {
				return fmt.Errorf("serve: run %d: %d per-session entries for %d sessions",
					i, len(run.PerSession), c.Sessions)
			}
			var sessOps uint64
			for _, ss := range run.PerSession {
				sessOps += ss.Ops
				if ss.TotalNS < 0 || ss.DeviceNS < 0 || ss.LockWaitNS < 0 || ss.QueueNS < 0 {
					return fmt.Errorf("serve: run %d: session %d has negative latency component", i, ss.Session)
				}
				if ss.TotalNS < ss.DeviceNS || ss.TotalNS < ss.LockWaitNS {
					return fmt.Errorf("serve: run %d: session %d decomposition exceeds total (total=%d device=%d lockwait=%d)",
						i, ss.Session, ss.TotalNS, ss.DeviceNS, ss.LockWaitNS)
				}
			}
			if sessOps != run.TotalOps {
				return fmt.Errorf("serve: run %d: per-session ops sum to %d, total says %d", i, sessOps, run.TotalOps)
			}
		}
	}
	return nil
}

// ValidateJSON decodes and validates raw report bytes — the one-call
// form tools/benchcheck uses.
func ValidateJSON(data []byte) error {
	r, err := DecodeReport(data)
	if err != nil {
		return err
	}
	return r.Validate()
}
