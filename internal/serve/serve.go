// Package serve is the trace-driven serving tier: a multi-client
// macro-benchmark harness that replays internal/workload traces
// against ONE mounted lfs.FS from N concurrent sessions and reports
// virtual-time latency percentiles per op kind plus sustained
// throughput — the yardstick trajectory every later scaling PR is
// judged against (ROADMAP "Trace-driven serving tier").
//
// Session model: the namespace and the op budget are partitioned
// statically over N sessions. Session i owns a disjoint namespace
// shard (workload.Mix with prefix "sNN") and replays its own
// deterministically seeded stream, so the set of streams is identical
// for any interleaving — only the interleaving itself, and therefore
// the measured contention, varies with scheduling.
//
// Virtual-time accounting follows the system-wide slowest-worker
// contract (ARCHITECTURE.md): one shared device clock accumulates
// serialised foreground work no matter how many goroutines issue it.
// A session stamps the shared clock around each op, so an op's
// recorded latency is the virtual time until its effects are on the
// medium *including* the device work of ops it queued behind — which
// is exactly the tail a client of a loaded server observes. Buffered
// appends cost ~0 until the next sync; syncs and reads carry the
// device work, and the per-kind histograms make that split visible.
package serve

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"sero/internal/array"
	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
	"sero/internal/sim"
	"sero/internal/trace"
	"sero/internal/workload"
)

// Config describes one serving run completely: replaying the same
// Config (and code) reproduces the same per-session op streams, which
// is what lets a future PR re-run a recorded BENCH trajectory and diff
// it.
type Config struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// Files is the total namespace width, partitioned over sessions.
	Files int `json:"files"`
	// Ops is the total mix-op budget, partitioned over sessions (the
	// population phase's creates and seed writes are on top of it and
	// are measured too).
	Ops int `json:"ops"`
	// FileBlocks caps each file's size in blocks.
	FileBlocks int `json:"file_blocks"`
	// Seed derives every session's RNG stream.
	Seed uint64 `json:"seed"`
	// ZipfTheta is the file-popularity skew (0 = uniform).
	ZipfTheta float64 `json:"zipf_theta"`
	// SyncEvery is each session's ops-per-sync cadence (workload.Mix).
	SyncEvery int `json:"sync_every"`
	// BurstEvery is the op spacing between append bursts.
	BurstEvery int `json:"burst_every"`
	// BurstLen is the appends per burst.
	BurstLen int `json:"burst_len"`

	// DeviceBlocks sizes the simulated device; 0 auto-sizes from
	// Files and Ops.
	DeviceBlocks int `json:"device_blocks"`
	// SegmentBlocks mirrors lfs.Params.SegmentBlocks (0 = serving
	// default, 256).
	SegmentBlocks int `json:"segment_blocks"`
	// CheckpointBlocks mirrors lfs.Params.CheckpointBlocks; 0
	// auto-sizes from Files so both slots hold the namespace.
	CheckpointBlocks int `json:"checkpoint_blocks"`
	// WritebackBlocks mirrors lfs.Params.WritebackBlocks (0 =
	// whole-segment group commit).
	WritebackBlocks int `json:"writeback_blocks"`
	// CheckpointEvery mirrors lfs.Params.CheckpointEvery (0 = 1<<16).
	CheckpointEvery int `json:"ckpt_every"`
	// CleanWatermark mirrors lfs.Params.CleanWatermark (0 =
	// foreground-only cleaning).
	CleanWatermark int `json:"clean_watermark"`
	// Concurrency mirrors lfs.Params.Concurrency (0 = serial).
	Concurrency int `json:"concurrency"`
	// AuditEvery mirrors lfs.Params.AuditEvery: a background audit
	// step every this many appended blocks (0 = continuous
	// verification off). Audit work is off-clock, so the virtual-time
	// trajectory is identical either way; the audit counters in the
	// Result report the shadow cost.
	AuditEvery int `json:"audit_every,omitempty"`
	// HeatFiles, when positive, freezes this many extra two-block
	// files (named outside every session's namespace shard) into
	// heated lines before the sessions start, so continuous
	// verification has a real line population to sweep during the run.
	// 0 heats nothing — the serving mix itself never heats files.
	HeatFiles int `json:"heat_files,omitempty"`
	// AffinityClasses spreads the sessions' namespaces over this many
	// heat-affinity classes (session i creates its files in class
	// i mod AffinityClasses), so a multi-session run exercises the
	// per-class appender fan-out instead of serialising every append
	// through the affinity-0 frontier. 0 or 1 keeps the single-class
	// behaviour; the op streams are identical either way (only each
	// create's affinity label changes).
	AffinityClasses int `json:"affinity_classes"`

	// Devices stripes the run over this many member devices
	// (internal/array). 0 or 1 keeps the single raw device, the
	// recorded-trajectory baseline; wider runs keep DeviceBlocks of
	// *global* capacity by sizing each member at
	// DeviceBlocks/(Devices-ParityDevices), rounded up to stripe
	// units.
	Devices int `json:"devices,omitempty"`
	// ParityDevices is the Reed–Solomon parity member count
	// (< Devices); the array serves reads with up to this many
	// members lost.
	ParityDevices int `json:"parity_devices,omitempty"`
	// DegradedDevices fails this many members (the highest-numbered
	// ones) after the population phase and before the measured
	// sessions start, so the trajectory records serving under member
	// loss. Must not exceed ParityDevices.
	DegradedDevices int `json:"degraded_devices,omitempty"`
}

// DefaultConfig returns the standard serving configuration at the
// given session count: the DefaultMix op blend over a zipfian(0.9)
// namespace, spread over four affinity classes with the write path,
// cleaner and mount fanned out over four worker planes.
func DefaultConfig(sessions, files, ops int) Config {
	m := workload.DefaultMix(1, 1)
	return Config{
		Sessions:        sessions,
		Files:           files,
		Ops:             ops,
		FileBlocks:      m.FileBlocks,
		Seed:            42,
		ZipfTheta:       m.ZipfTheta,
		SyncEvery:       m.SyncEvery,
		BurstEvery:      m.BurstEvery,
		BurstLen:        m.BurstLen,
		SegmentBlocks:   256,
		CheckpointEvery: 1 << 16,
		Concurrency:     4,
		AffinityClasses: 4,
	}
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// withDefaults fills the zero knobs and validates the rest.
func (c Config) withDefaults() (Config, error) {
	if c.Sessions <= 0 || c.Files <= 0 || c.Ops < 0 {
		return c, fmt.Errorf("serve: bad config: sessions=%d files=%d ops=%d", c.Sessions, c.Files, c.Ops)
	}
	if c.Sessions > c.Files {
		return c, fmt.Errorf("serve: %d sessions cannot shard %d files", c.Sessions, c.Files)
	}
	if c.FileBlocks <= 0 {
		c.FileBlocks = 4
	}
	if c.FileBlocks > lfs.MaxFileBlocks {
		return c, fmt.Errorf("serve: FileBlocks %d exceeds lfs limit %d", c.FileBlocks, lfs.MaxFileBlocks)
	}
	if c.ZipfTheta < 0 || c.ZipfTheta >= 1 {
		return c, fmt.Errorf("serve: ZipfTheta %g outside [0,1)", c.ZipfTheta)
	}
	if c.SegmentBlocks <= 0 {
		c.SegmentBlocks = 256
	}
	if c.CheckpointBlocks <= 0 {
		// Each slot must hold imap + directory + liveness table for the
		// whole namespace; ~72 bytes per file covers all three with
		// headroom, doubled for the two slots.
		slotBlocks := (72*c.Files + 16384) / device.DataBytes
		c.CheckpointBlocks = nextPow2(2 * slotBlocks)
		if c.CheckpointBlocks < 2*c.SegmentBlocks {
			c.CheckpointBlocks = 2 * c.SegmentBlocks
		}
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1 << 16
	}
	if c.DeviceBlocks <= 0 {
		// Population ≈ 2 blocks/file (seed data + inode) plus journal
		// records; mix ops append at most ~1.5 blocks each with inode
		// rewrites and churn; leave cleaning headroom.
		need := c.CheckpointBlocks + 3*c.Files + 4*c.Ops + 8*c.SegmentBlocks + 8*c.HeatFiles
		c.DeviceBlocks = nextPow2(need)
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.AffinityClasses <= 0 {
		c.AffinityClasses = 1
	}
	if c.AffinityClasses > 256 {
		return c, fmt.Errorf("serve: AffinityClasses %d exceeds the 256 heat classes", c.AffinityClasses)
	}
	if c.WritebackBlocks < 0 || c.CleanWatermark < 0 {
		return c, fmt.Errorf("serve: negative writeback/watermark")
	}
	if c.AuditEvery < 0 {
		return c, fmt.Errorf("serve: negative audit interval %d", c.AuditEvery)
	}
	if c.HeatFiles < 0 {
		return c, fmt.Errorf("serve: negative heat-file count %d", c.HeatFiles)
	}
	if c.Devices < 0 {
		return c, fmt.Errorf("serve: negative device count %d", c.Devices)
	}
	if c.ParityDevices < 0 || (c.Devices >= 1 && c.ParityDevices >= c.Devices) || (c.Devices == 0 && c.ParityDevices > 0) {
		return c, fmt.Errorf("serve: %d parity devices with %d devices", c.ParityDevices, c.Devices)
	}
	if c.DegradedDevices < 0 || c.DegradedDevices > c.ParityDevices {
		return c, fmt.Errorf("serve: %d degraded devices exceed %d parity", c.DegradedDevices, c.ParityDevices)
	}
	return c, nil
}

// OpStats summarises one op kind's virtual-time latency.
type OpStats struct {
	// Count is the number of ops of this kind applied.
	Count uint64 `json:"count"`
	// P50NS is the median virtual-time latency in nanoseconds (exact
	// to within a power-of-two histogram bucket, as is P99NS).
	P50NS int64 `json:"p50_ns"`
	// P99NS is the 99th-percentile latency in nanoseconds.
	P99NS int64 `json:"p99_ns"`
	// WorstNS is the exact worst-op latency.
	WorstNS int64 `json:"worst_ns"`
	// MeanNS is the arithmetic mean latency.
	MeanNS int64 `json:"mean_ns"`
	// SyncAmortizedNS is the mean flush cost per op of this kind:
	// buffered mutations (create/append/rename/delete) cost ~0 at
	// apply time because the device work hides in the next sync, so
	// each sync's latency is apportioned back equally over the
	// buffered ops it covered and reported here as a per-op mean.
	// Zero for kinds that carry their own device work (read, sync).
	// The true cost of a buffered op is MeanNS + SyncAmortizedNS.
	SyncAmortizedNS int64 `json:"sync_amortized_ns,omitempty"`
}

// SessionStats decomposes one session's total measured latency into
// where the virtual time went: DeviceNS is the session's own device
// commands (charged to its ops as they ran), LockWaitNS is time spent
// acquiring the FS metadata lock, and QueueNS is the remainder —
// virtual time the shared clock advanced under *other* sessions' ops
// while this one was mid-flight, i.e. queueing behind their device
// work. Over one device TotalNS = DeviceNS + LockWaitNS + QueueNS
// (QueueNS is clamped at 0 against rounding, but the three windows are
// disjoint by construction, so the identity holds exactly). Over a
// striped array DeviceNS sums member commands that ran in parallel in
// virtual time, so it can exceed TotalNS — by at most the member
// count — and the identity becomes an inequality.
type SessionStats struct {
	// Session is the session id (shard index).
	Session int `json:"session"`
	// Ops counts the session's applied ops, population included.
	Ops uint64 `json:"ops"`
	// TotalNS sums the session's per-op shared-clock latencies.
	TotalNS int64 `json:"total_ns"`
	// DeviceNS is the session's own device time.
	DeviceNS int64 `json:"device_ns"`
	// LockWaitNS is time spent waiting for the FS lock.
	LockWaitNS int64 `json:"lock_wait_ns"`
	// QueueNS is time spent queued behind other sessions' device work.
	QueueNS int64 `json:"queue_ns"`
}

// Result is one serving run's measured trajectory point.
type Result struct {
	// Config echoes the full reproduction configuration, with every
	// auto-sized knob resolved.
	Config Config `json:"config"`
	// TotalOps counts every applied op, population phase included.
	TotalOps uint64 `json:"total_ops"`
	// VirtualNS is the virtual time the whole run consumed.
	VirtualNS int64 `json:"virtual_ns"`
	// ThroughputOpsPerSec is sustained throughput in ops per virtual
	// second.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_vsec"`
	// PerOp holds the latency summary per op kind, keyed by
	// workload.OpKind.String().
	PerOp map[string]OpStats `json:"per_op"`
	// PerSession decomposes each session's latency (own device time vs
	// lock-wait vs queueing), ordered by session id.
	PerSession []SessionStats `json:"per_session"`
	// BlocksAppended echoes the FS counter explaining the trajectory's
	// write volume, as do the four counters below.
	BlocksAppended uint64 `json:"blocks_appended"`
	// Syncs counts acked Sync calls.
	Syncs uint64 `json:"syncs"`
	// Checkpoints counts checkpoint-region rewrites.
	Checkpoints uint64 `json:"checkpoints"`
	// JournalRecords counts summary records appended.
	JournalRecords uint64 `json:"journal_records"`
	// CleanerPasses counts cleaning passes the run triggered.
	CleanerPasses uint64 `json:"cleaner_passes"`
	// BlocksCopied counts live blocks the cleaner moved.
	BlocksCopied uint64 `json:"blocks_copied"`
	// JournalReanchors counts explicit jump re-anchors of the summary
	// chain after a disconnected promise.
	JournalReanchors uint64 `json:"journal_reanchors"`
	// CheckpointFallbacks counts Syncs that fell back to a full
	// checkpoint because the journal window was exhausted.
	CheckpointFallbacks uint64 `json:"checkpoint_fallbacks"`
	// MovesInvalidated counts cleaner copies thrown away because the
	// foreground overwrote the block mid-pass.
	MovesInvalidated uint64 `json:"moves_invalidated"`
	// AuditSteps counts background audit steps the run executed (zero
	// unless Config.AuditEvery armed continuous verification, as are
	// the four counters below).
	AuditSteps uint64 `json:"audit_steps,omitempty"`
	// AuditRounds counts completed audit rounds (full sweeps of the
	// heated-line population).
	AuditRounds uint64 `json:"audit_rounds,omitempty"`
	// AuditLinesChecked counts line verifications audit steps ran.
	AuditLinesChecked uint64 `json:"audit_lines_checked,omitempty"`
	// AuditFindings counts tampered-line reports (expected zero in a
	// serving benchmark).
	AuditFindings uint64 `json:"audit_findings,omitempty"`
	// AuditDeviceNS is the audit's shadow device cost in virtual
	// nanoseconds — time the sweeps would have cost on-clock.
	AuditDeviceNS uint64 `json:"audit_device_ns,omitempty"`
	// AuditRepairs counts tamper findings the armed self-healing
	// repairer healed from parity (zero in a clean benchmark).
	AuditRepairs uint64 `json:"audit_repairs,omitempty"`
	// Devices echoes the member-device count (1 = raw device; absent
	// in pre-array trajectories, which benchcheck reads as 1).
	Devices int `json:"devices,omitempty"`
	// ParityDevices echoes the parity member count.
	ParityDevices int `json:"parity_devices,omitempty"`
	// Degraded is true when the run served with members failed.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReads counts reads the array served via parity
	// reconstruction (zero on a healthy run, as are the two below).
	DegradedReads uint64 `json:"degraded_reads,omitempty"`
	// ReconstructedBlocks counts blocks rebuilt from parity.
	ReconstructedBlocks uint64 `json:"reconstructed_blocks,omitempty"`
	// ParityBlockWrites counts parity blocks the array flushed.
	ParityBlockWrites uint64 `json:"parity_block_writes,omitempty"`
	// PerDevice breaks the run down per member device (absent on a
	// single raw device).
	PerDevice []DeviceStats `json:"per_device,omitempty"`
}

// DeviceStats is one member device's share of an array run.
type DeviceStats struct {
	// Device is the member index.
	Device int `json:"device"`
	// ClockNS is the member's own virtual timeline; the run's
	// VirtualNS is the maximum over members (slowest-member contract).
	ClockNS int64 `json:"clock_ns"`
	// MagneticReads counts the member's magnetic block reads.
	MagneticReads uint64 `json:"magnetic_reads"`
	// MagneticWrites counts the member's magnetic block writes.
	MagneticWrites uint64 `json:"magnetic_writes"`
	// Failed is true when the member was failed during the run.
	Failed bool `json:"failed,omitempty"`
}

// session is one client's private replay state.
type session struct {
	id     int
	stream []workload.Op
	hists  map[workload.OpKind]*histogram
	// amort accumulates, per buffered-op kind, the total sync latency
	// apportioned back to ops of that kind (see OpStats.SyncAmortizedNS).
	amort map[workload.OpKind]int64
	// stats is the session's latency decomposition, accumulated op by
	// op from the per-op trace.Task counters.
	stats SessionStats
	err   error
}

// buffered reports whether an op kind's device work is deferred to the
// next sync (its apply-time latency is ~0 and the flush cost should be
// attributed back to it).
func buffered(k workload.OpKind) bool {
	switch k {
	case workload.OpCreate, workload.OpWrite, workload.OpRename, workload.OpDelete:
		return true
	}
	return false
}

// sessionSeed derives session i's RNG seed from the run seed.
func sessionSeed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
}

// Run executes one serving run: it formats a quiet FS, generates every
// session's stream, replays them from Sessions concurrent goroutines
// and merges the per-session recorders into a Result.
func Run(cfg Config) (Result, error) { return RunTraced(cfg, nil) }

// RunTraced is Run with an optional tracer: when tr is non-nil it is
// installed on the run's device for the duration, the device and lfs
// layers emit their spans into it, and every applied op additionally
// emits one "serve" span tagged with its session id (V1 = lock-wait
// ns, V2 = own device ns — the queueing decomposition's inputs).
// Virtual time, layout and the Result are byte-identical with or
// without a tracer; per-session breakdowns are always collected.
func RunTraced(cfg Config, tr *trace.Tracer) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	// Devices == 0 is the recorded-trajectory baseline (one raw
	// device); Devices == 1 builds a width-1 array, byte-identical to
	// the baseline by the fourth contract — the serve tests hold the
	// two trajectories equal.
	var dev device.Dev
	var arr *array.Array
	if cfg.Devices >= 1 {
		// Keep DeviceBlocks of *global* capacity: each data member
		// carries its share, rounded up to whole stripe units.
		d := cfg.Devices - cfg.ParityDevices
		su := cfg.SegmentBlocks
		memberBlocks := (cfg.DeviceBlocks + d*su - 1) / (d * su) * su
		dp := device.DefaultParams(memberBlocks)
		mp := medium.DefaultParams(memberBlocks, device.DotsPerBlock)
		mp.ReadNoiseSigma, mp.ResidualInPlaneSignal, mp.ThermalCrosstalk = 0, 0, 0
		dp.Medium = mp
		arr, err = array.Build(cfg.Devices, dp, array.Params{StripeBlocks: su, Parity: cfg.ParityDevices})
		if err != nil {
			return Result{}, fmt.Errorf("serve: building array: %w", err)
		}
		dev = arr
	} else {
		dp := device.DefaultParams(cfg.DeviceBlocks)
		mp := medium.DefaultParams(cfg.DeviceBlocks, device.DotsPerBlock)
		mp.ReadNoiseSigma, mp.ResidualInPlaneSignal, mp.ThermalCrosstalk = 0, 0, 0
		dp.Medium = mp
		dev = device.New(dp)
	}
	if tr != nil {
		dev.SetTracer(tr)
	}
	fs, err := lfs.New(dev, lfs.Params{
		SegmentBlocks:    cfg.SegmentBlocks,
		CheckpointBlocks: cfg.CheckpointBlocks,
		WritebackBlocks:  cfg.WritebackBlocks,
		CheckpointEvery:  cfg.CheckpointEvery,
		CleanWatermark:   cfg.CleanWatermark,
		Concurrency:      cfg.Concurrency,
		HeatAware:        true,
		ReserveSegments:  2,
		AuditEvery:       cfg.AuditEvery,
	})
	if err != nil {
		return Result{}, err
	}
	defer fs.Close()

	// Self-healing: with parity members and continuous verification
	// armed, the auditor's tamper findings are repaired in place from
	// cross-device parity (array.RepairLine).
	if arr != nil && cfg.ParityDevices > 0 && cfg.AuditEvery > 0 {
		fs.SetAuditRepairer(arr.RepairLine)
	}

	// Freeze the heated population before any session starts: identical
	// work whether or not auditing is armed, so the audit-on/audit-off
	// trajectories stay comparable.
	for i := 0; i < cfg.HeatFiles; i++ {
		name := fmt.Sprintf("frozen-%03d", i)
		ino, err := fs.Create(name, uint8(i%cfg.AffinityClasses))
		if err == nil {
			data := make([]byte, 2*device.DataBytes)
			for j := range data {
				data[j] = byte(i + 1)
			}
			err = fs.WriteFile(ino, data)
		}
		if err == nil {
			_, err = fs.HeatFile(name)
		}
		if err != nil {
			return Result{}, fmt.Errorf("serve: heat population %d/%d: %w", i, cfg.HeatFiles, err)
		}
	}
	if cfg.HeatFiles > 0 {
		if err := fs.Sync(); err != nil {
			return Result{}, fmt.Errorf("serve: heat population sync: %w", err)
		}
	}

	// Fail members only after the heated population exists, so the
	// degraded run serves (and reconstructs) real data.
	for i := 0; i < cfg.DegradedDevices; i++ {
		if err := arr.FailMember(cfg.Devices - 1 - i); err != nil {
			return Result{}, fmt.Errorf("serve: failing member %d: %w", cfg.Devices-1-i, err)
		}
	}

	// Partition namespace and op budget; the first shards absorb the
	// remainders so the totals are exact.
	sessions := make([]*session, cfg.Sessions)
	def := workload.DefaultMix(1, 1)
	for i := range sessions {
		files := cfg.Files / cfg.Sessions
		if i < cfg.Files%cfg.Sessions {
			files++
		}
		ops := cfg.Ops / cfg.Sessions
		if i < cfg.Ops%cfg.Sessions {
			ops++
		}
		mix := workload.Mix{
			Files:      files,
			FileBlocks: cfg.FileBlocks,
			Ops:        ops,
			Prefix:     fmt.Sprintf("s%03d", i),
			Affinity:   uint8(i % cfg.AffinityClasses),
			CreateW:    def.CreateW,
			AppendW:    def.AppendW,
			ReadW:      def.ReadW,
			RenameW:    def.RenameW,
			DeleteW:    def.DeleteW,
			ZipfTheta:  cfg.ZipfTheta,
			SyncEvery:  cfg.SyncEvery,
			BurstEvery: cfg.BurstEvery,
			BurstLen:   cfg.BurstLen,
		}
		sessions[i] = &session{
			id:     i,
			stream: mix.Generate(sim.NewRNG(sessionSeed(cfg.Seed, i))),
			hists:  make(map[workload.OpKind]*histogram),
			amort:  make(map[workload.OpKind]int64),
		}
	}

	clock := dev.Clock()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			a := workload.NewApplier(fs)
			// pending counts this session's buffered ops per kind since
			// its last sync; each sync's latency is apportioned back over
			// them (the generated stream always ends with a sync, so no
			// buffered op goes unattributed).
			pending := make(map[workload.OpKind]uint64)
			for _, op := range s.stream {
				task := &trace.Task{}
				t0 := clock.Now()
				if err := a.ApplyTraced(op, task); err != nil {
					s.err = fmt.Errorf("serve: session %d: %w", s.id, err)
					return
				}
				lat := clock.Now() - t0
				lw, devNS := task.LockWaitNS(), task.DeviceNS()
				queue := int64(lat) - lw - devNS
				if queue < 0 {
					queue = 0 // defensive; the windows are disjoint
				}
				s.stats.Ops++
				s.stats.TotalNS += int64(lat)
				s.stats.DeviceNS += devNS
				s.stats.LockWaitNS += lw
				s.stats.QueueNS += queue
				tr.Emit(trace.Span{
					Name: op.Kind.String(), Cat: "serve",
					Track: 0, Session: int32(s.id),
					Start: int64(t0), Dur: int64(lat), V1: lw, V2: devNS,
				})
				h := s.hists[op.Kind]
				if h == nil {
					h = &histogram{}
					s.hists[op.Kind] = h
				}
				h.record(lat)
				switch {
				case op.Kind == workload.OpSync:
					var covered uint64
					for _, c := range pending {
						covered += c
					}
					if covered > 0 {
						for k, c := range pending {
							s.amort[k] += int64(lat) * int64(c) / int64(covered)
							delete(pending, k)
						}
					}
				case buffered(op.Kind):
					pending[op.Kind]++
				}
			}
		}(s)
	}
	wg.Wait()

	merged := make(map[workload.OpKind]*histogram)
	amortTotal := make(map[workload.OpKind]int64)
	var total uint64
	for _, s := range sessions {
		if s.err != nil {
			return Result{}, s.err
		}
		for k, h := range s.hists {
			m := merged[k]
			if m == nil {
				m = &histogram{}
				merged[k] = m
			}
			m.merge(h)
			total += h.count
		}
		for k, ns := range s.amort {
			amortTotal[k] += ns
		}
	}

	res := Result{
		Config:     cfg,
		TotalOps:   total,
		VirtualNS:  int64(clock.Now()),
		PerOp:      make(map[string]OpStats, len(merged)),
		PerSession: make([]SessionStats, len(sessions)),
	}
	for i, s := range sessions {
		s.stats.Session = s.id
		res.PerSession[i] = s.stats
	}
	if res.VirtualNS > 0 {
		res.ThroughputOpsPerSec = float64(total) / (float64(res.VirtualNS) / float64(time.Second))
	}
	for k, h := range merged {
		res.PerOp[k.String()] = OpStats{
			Count:           h.count,
			P50NS:           int64(h.quantile(0.50)),
			P99NS:           int64(h.quantile(0.99)),
			WorstNS:         int64(h.worst()),
			MeanNS:          int64(h.mean()),
			SyncAmortizedNS: amortTotal[k] / int64(h.count),
		}
	}
	st := fs.Stats()
	res.BlocksAppended = st.BlocksAppended
	res.Syncs = st.Syncs
	res.Checkpoints = st.Checkpoints
	res.JournalRecords = st.JournalRecords
	res.CleanerPasses = st.CleanerPasses
	res.BlocksCopied = st.CleanerCopied
	res.JournalReanchors = st.JournalReanchors
	res.CheckpointFallbacks = st.CheckpointFallbacks
	res.MovesInvalidated = st.CleanerStaleMoves
	res.AuditSteps = st.AuditSteps
	res.AuditRounds = st.AuditRounds
	res.AuditLinesChecked = st.AuditLinesChecked
	res.AuditFindings = st.AuditFindings
	res.AuditDeviceNS = st.AuditDeviceNS
	res.AuditRepairs = st.AuditRepairs
	res.Devices = cfg.Devices
	if res.Devices == 0 {
		res.Devices = 1
	}
	if arr != nil {
		ast := arr.ArrayStats()
		res.ParityDevices = ast.Parity
		res.Degraded = cfg.DegradedDevices > 0
		res.DegradedReads = ast.DegradedReads
		res.ReconstructedBlocks = ast.ReconstructedBlocks
		res.ParityBlockWrites = ast.ParityBlockWrites
		res.PerDevice = make([]DeviceStats, cfg.Devices)
		for m := 0; m < cfg.Devices; m++ {
			mst := arr.MemberDevice(m).Stats()
			res.PerDevice[m] = DeviceStats{
				Device:         m,
				ClockNS:        int64(ast.MemberClocks[m]),
				MagneticReads:  mst.MagneticReads,
				MagneticWrites: mst.MagneticWrites,
				Failed:         ast.Failed[m],
			}
		}
	}
	return res, nil
}
