package serve

import (
	"math/bits"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket b
// holds samples whose nanosecond value has bit length b, i.e. the
// range [2^(b-1), 2^b). Bucket 0 holds exact zeros (common for
// buffered appends, which do no device I/O before the next sync);
// bucket 64 catches the full uint64 range.
const histBuckets = 65

// histogram is a fixed-size log-scaled latency histogram. Recording is
// O(1) with no allocation, so 10⁶-op serving runs pay nothing per
// sample — the reason the recorder is a histogram and not a sample
// vector. Quantiles are answered by rank-walking the buckets with
// linear interpolation inside the winning bucket; the worst op is
// tracked exactly.
type histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sumNS   uint64
	worstNS uint64
}

// record adds one latency sample.
func (h *histogram) record(d time.Duration) {
	ns := uint64(d)
	h.buckets[bits.Len64(ns)]++
	h.count++
	h.sumNS += ns
	if ns > h.worstNS {
		h.worstNS = ns
	}
}

// merge folds other into h.
func (h *histogram) merge(other *histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sumNS += other.sumNS
	if other.worstNS > h.worstNS {
		h.worstNS = other.worstNS
	}
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) as a duration. The
// answer is exact to within the winning power-of-two bucket (linear
// interpolation by rank inside it) and capped at the exact worst
// sample; an empty histogram answers 0.
func (h *histogram) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1))
	var seen uint64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		if rank < seen+n {
			if b == 0 {
				return 0
			}
			lo := uint64(1) << (b - 1)
			hi := uint64(1)<<b - 1
			if hi > h.worstNS {
				hi = h.worstNS
			}
			if hi < lo {
				hi = lo
			}
			// Interpolate by rank position inside the bucket.
			frac := float64(rank-seen) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		seen += n
	}
	return time.Duration(h.worstNS)
}

// mean returns the arithmetic mean latency, or 0 when empty.
func (h *histogram) mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sumNS / h.count)
}

// worst returns the exact maximum sample.
func (h *histogram) worst() time.Duration { return time.Duration(h.worstNS) }
