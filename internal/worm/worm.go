// Package worm implements the §2 baseline WORM technologies the paper
// positions SERO against, each as a block store with a freeze
// operation and a defined attacker model:
//
//   - SoftwareWORM: "the disk driver or the firmware of the disk can
//     be modified to block future writes ... The integrity offered by
//     this approach is relatively weak, as software modifications can
//     generally be undone."
//   - TapeWORM (LTO-3 style): "a small semiconductor memory in which a
//     read-only flag can be set ... The tape itself can still be
//     written using a tape drive that has been tampered with."
//   - OpticalWORM: physically write-once, good integrity — but the
//     whole medium is write-once from the start (no WMRM phase) and
//     silent overwrites are still not *detected*, merely resisted.
//   - FuseWORM (the IBM patent [56]): a blowable fuse makes an entire
//     platter immutable — strong but all-or-nothing.
//
// Each baseline implements Store, so the comparison experiment (E11)
// can run the same history-rewrite attack against every technology and
// against SERO, and tabulate flexibility and tamper evidence side by
// side.
package worm

import (
	"bytes"
	"errors"
	"fmt"
)

// BlockSize matches the SERO device block size.
const BlockSize = 512

// Store is the common contract of the baseline technologies.
type Store interface {
	// Name identifies the technology.
	Name() string
	// Write stores a block through the *honest* interface.
	Write(pba uint64, data []byte) error
	// Read fetches a block.
	Read(pba uint64) ([]byte, error)
	// Freeze makes the given block range read-only via the
	// technology's mechanism. Granularity restrictions surface as
	// errors.
	Freeze(start, n uint64) error
	// RawWrite models the §5 insider: physical access below the honest
	// interface (a tampered drive, a patched driver). It returns
	// ErrPhysicallyImpossible when the medium itself cannot be
	// altered.
	RawWrite(pba uint64, data []byte) error
	// Audit re-examines the store and reports whether any tampering
	// with frozen data is detectable after the fact.
	Audit() AuditResult
}

// AuditResult is the outcome of a post-attack audit.
type AuditResult struct {
	// TamperDetected is true when the technology can show that frozen
	// data was altered.
	TamperDetected bool
	// Notes explains the verdict.
	Notes string
}

// Baseline errors.
var (
	// ErrFrozen reports an honest write to frozen data.
	ErrFrozen = errors.New("worm: block is frozen")
	// ErrPhysicallyImpossible reports a raw write the medium cannot
	// perform (true write-once media).
	ErrPhysicallyImpossible = errors.New("worm: medium physically immutable")
	// ErrGranularity reports a freeze the technology cannot scope.
	ErrGranularity = errors.New("worm: freeze granularity not supported")
	// ErrWriteOnce reports a second write to a write-once block.
	ErrWriteOnce = errors.New("worm: block already written")
	// ErrOutOfRange reports a bad address.
	ErrOutOfRange = errors.New("worm: block out of range")
)

// blocks is the shared backing array helper.
type blocksArr struct {
	data [][]byte
}

func newBlocks(n int) blocksArr {
	return blocksArr{data: make([][]byte, n)}
}

func (b *blocksArr) check(pba uint64) error {
	if pba >= uint64(len(b.data)) {
		return fmt.Errorf("%w: %d", ErrOutOfRange, pba)
	}
	return nil
}

func (b *blocksArr) set(pba uint64, d []byte) {
	cp := make([]byte, BlockSize)
	copy(cp, d)
	b.data[pba] = cp
}

func (b *blocksArr) get(pba uint64) []byte {
	if b.data[pba] == nil {
		return make([]byte, BlockSize)
	}
	return append([]byte(nil), b.data[pba]...)
}

// SoftwareWORM blocks writes to frozen ranges in the driver. The
// attacker patches the driver: RawWrite succeeds and the audit has
// nothing physical to check.
type SoftwareWORM struct {
	blocksArr
	frozen map[uint64]bool
}

// NewSoftwareWORM builds a software-WORM store of n blocks.
func NewSoftwareWORM(n int) *SoftwareWORM {
	return &SoftwareWORM{blocksArr: newBlocks(n), frozen: make(map[uint64]bool)}
}

// Name implements Store.
func (s *SoftwareWORM) Name() string { return "software-worm" }

// Write implements Store.
func (s *SoftwareWORM) Write(pba uint64, data []byte) error {
	if err := s.check(pba); err != nil {
		return err
	}
	if s.frozen[pba] {
		return fmt.Errorf("%w: %d", ErrFrozen, pba)
	}
	s.set(pba, data)
	return nil
}

// Read implements Store.
func (s *SoftwareWORM) Read(pba uint64) ([]byte, error) {
	if err := s.check(pba); err != nil {
		return nil, err
	}
	return s.get(pba), nil
}

// Freeze implements Store: any range, any time — software is flexible.
func (s *SoftwareWORM) Freeze(start, n uint64) error {
	for pba := start; pba < start+n; pba++ {
		if err := s.check(pba); err != nil {
			return err
		}
		s.frozen[pba] = true
	}
	return nil
}

// RawWrite implements Store: the attacker simply patches the driver.
func (s *SoftwareWORM) RawWrite(pba uint64, data []byte) error {
	if err := s.check(pba); err != nil {
		return err
	}
	s.set(pba, data) // no physical barrier, no trace
	return nil
}

// Audit implements Store: nothing physical distinguishes tampered data.
func (s *SoftwareWORM) Audit() AuditResult {
	return AuditResult{
		TamperDetected: false,
		Notes:          "no physical record: a patched driver rewrites silently",
	}
}

// TapeWORM models an LTO-3 cartridge: the read-only flag lives in a
// semiconductor memory beside the medium; a compliant drive honours
// it, a tampered drive does not, and the tape itself records nothing
// about the violation.
type TapeWORM struct {
	blocksArr
	cartridgeRO bool
}

// NewTapeWORM builds a tape-WORM store of n blocks.
func NewTapeWORM(n int) *TapeWORM {
	return &TapeWORM{blocksArr: newBlocks(n)}
}

// Name implements Store.
func (t *TapeWORM) Name() string { return "lto3-tape" }

// Write implements Store.
func (t *TapeWORM) Write(pba uint64, data []byte) error {
	if err := t.check(pba); err != nil {
		return err
	}
	if t.cartridgeRO {
		return fmt.Errorf("%w: cartridge flag set", ErrFrozen)
	}
	t.set(pba, data)
	return nil
}

// Read implements Store.
func (t *TapeWORM) Read(pba uint64) ([]byte, error) {
	if err := t.check(pba); err != nil {
		return nil, err
	}
	return t.get(pba), nil
}

// Freeze implements Store: only the whole cartridge can be frozen
// ("integrity at the medium level only").
func (t *TapeWORM) Freeze(start, n uint64) error {
	if start != 0 || n != uint64(len(t.data)) {
		return fmt.Errorf("%w: LTO-3 freezes the whole cartridge", ErrGranularity)
	}
	t.cartridgeRO = true
	return nil
}

// RawWrite implements Store: a tampered drive ignores the flag.
func (t *TapeWORM) RawWrite(pba uint64, data []byte) error {
	if err := t.check(pba); err != nil {
		return err
	}
	t.set(pba, data)
	return nil
}

// Audit implements Store.
func (t *TapeWORM) Audit() AuditResult {
	return AuditResult{
		TamperDetected: false,
		Notes:          "the cartridge flag is intact but says nothing about the tape's content",
	}
}

// OpticalWORM is physically write-once from the first byte: no WMRM
// phase at all. Overwrites are physically impossible, which resists
// tampering — but an attacker with a fresh disc can still substitute
// media, and the disc itself carries no self-authenticating hash.
type OpticalWORM struct {
	blocksArr
	written map[uint64]bool
}

// NewOpticalWORM builds an optical store of n blocks.
func NewOpticalWORM(n int) *OpticalWORM {
	return &OpticalWORM{blocksArr: newBlocks(n), written: make(map[uint64]bool)}
}

// Name implements Store.
func (o *OpticalWORM) Name() string { return "optical-worm" }

// Write implements Store: each block once, ever.
func (o *OpticalWORM) Write(pba uint64, data []byte) error {
	if err := o.check(pba); err != nil {
		return err
	}
	if o.written[pba] {
		return fmt.Errorf("%w: %d", ErrWriteOnce, pba)
	}
	o.set(pba, data)
	o.written[pba] = true
	return nil
}

// Read implements Store.
func (o *OpticalWORM) Read(pba uint64) ([]byte, error) {
	if err := o.check(pba); err != nil {
		return nil, err
	}
	return o.get(pba), nil
}

// Freeze implements Store: a no-op — everything written is already
// final (and everything unwritten is the only flexibility left).
func (o *OpticalWORM) Freeze(start, n uint64) error { return nil }

// RawWrite implements Store: the dye cannot be un-burnt.
func (o *OpticalWORM) RawWrite(pba uint64, data []byte) error {
	if err := o.check(pba); err != nil {
		return err
	}
	if o.written[pba] {
		return ErrPhysicallyImpossible
	}
	// Unwritten blocks can be burnt by anyone — appending forged
	// history is possible, silently.
	o.set(pba, data)
	o.written[pba] = true
	return nil
}

// Audit implements Store: overwrites were impossible, but nothing
// distinguishes attacker-appended blocks from genuine ones.
func (o *OpticalWORM) Audit() AuditResult {
	return AuditResult{
		TamperDetected: false,
		Notes:          "overwrite physically resisted; appended forgeries undetectable",
	}
}

// FuseWORM models the IBM write-once disk patent: blowing a fuse makes
// the whole platter immutable at the head. "It would be more difficult
// to repair the fuse in the head than it is to tamper with an LTO-3
// tape drive" — but the platter itself remains writable with another
// head.
type FuseWORM struct {
	blocksArr
	fuseBlown bool
}

// NewFuseWORM builds a fuse-WORM disk of n blocks.
func NewFuseWORM(n int) *FuseWORM {
	return &FuseWORM{blocksArr: newBlocks(n)}
}

// Name implements Store.
func (f *FuseWORM) Name() string { return "fuse-disk" }

// Write implements Store.
func (f *FuseWORM) Write(pba uint64, data []byte) error {
	if err := f.check(pba); err != nil {
		return err
	}
	if f.fuseBlown {
		return fmt.Errorf("%w: fuse blown", ErrFrozen)
	}
	f.set(pba, data)
	return nil
}

// Read implements Store.
func (f *FuseWORM) Read(pba uint64) ([]byte, error) {
	if err := f.check(pba); err != nil {
		return nil, err
	}
	return f.get(pba), nil
}

// Freeze implements Store: whole platter or nothing.
func (f *FuseWORM) Freeze(start, n uint64) error {
	if start != 0 || n != uint64(len(f.data)) {
		return fmt.Errorf("%w: the fuse freezes the whole platter", ErrGranularity)
	}
	f.fuseBlown = true
	return nil
}

// RawWrite implements Store: swap the head assembly and the platter
// writes fine.
func (f *FuseWORM) RawWrite(pba uint64, data []byte) error {
	if err := f.check(pba); err != nil {
		return err
	}
	f.set(pba, data)
	return nil
}

// Audit implements Store.
func (f *FuseWORM) Audit() AuditResult {
	return AuditResult{
		TamperDetected: false,
		Notes:          "the blown fuse is intact; the platter's content is unauthenticated",
	}
}

// RewriteAttack runs the canonical §5 history rewrite against a
// baseline: write a record, freeze it, raw-rewrite it, audit. It
// returns what the attacker achieved and whether anyone can tell.
type RewriteAttackResult struct {
	Technology string
	// FreezeScoped is true when the technology could freeze just the
	// record (flexibility).
	FreezeScoped bool
	// RewriteSucceeded is true when the raw write changed the stored
	// bytes.
	RewriteSucceeded bool
	// Detected is true when the post-attack audit shows tampering.
	Detected bool
	Notes    string
}

// RunRewriteAttack executes the attack against s; totalBlocks is the
// store's size (needed for whole-medium freeze fallbacks).
func RunRewriteAttack(s Store, totalBlocks uint64) (RewriteAttackResult, error) {
	res := RewriteAttackResult{Technology: s.Name()}
	record := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := s.Write(3, record); err != nil {
		return res, err
	}
	// Try a scoped freeze first; fall back to whole-medium.
	if err := s.Freeze(3, 1); err == nil {
		res.FreezeScoped = true
	} else if err := s.Freeze(0, totalBlocks); err != nil {
		return res, err
	}

	forged := bytes.Repeat([]byte{0xEE}, BlockSize)
	if err := s.RawWrite(3, forged); err == nil {
		got, rerr := s.Read(3)
		if rerr != nil {
			return res, rerr
		}
		res.RewriteSucceeded = bytes.Equal(got, forged)
	}
	audit := s.Audit()
	res.Detected = audit.TamperDetected
	res.Notes = audit.Notes
	return res, nil
}
