package worm

import (
	"bytes"
	"errors"
	"testing"
)

func record() []byte { return bytes.Repeat([]byte{0xAB}, BlockSize) }

func TestSoftwareWORMHonestPath(t *testing.T) {
	s := NewSoftwareWORM(8)
	if err := s.Write(3, record()); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, record()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("honest overwrite: %v", err)
	}
	// Unfrozen blocks stay writable (scoped freeze).
	if err := s.Write(4, record()); err != nil {
		t.Fatal(err)
	}
}

func TestSoftwareWORMRawBypass(t *testing.T) {
	s := NewSoftwareWORM(8)
	if err := s.Write(3, record()); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze(3, 1); err != nil {
		t.Fatal(err)
	}
	forged := bytes.Repeat([]byte{0xEE}, BlockSize)
	if err := s.RawWrite(3, forged); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(3)
	if !bytes.Equal(got, forged) {
		t.Fatal("raw write did not stick")
	}
	if s.Audit().TamperDetected {
		t.Fatal("software WORM claims detection it cannot have")
	}
}

func TestTapeWORMWholeCartridgeOnly(t *testing.T) {
	s := NewTapeWORM(8)
	if err := s.Freeze(3, 1); !errors.Is(err, ErrGranularity) {
		t.Fatalf("scoped freeze: %v", err)
	}
	if err := s.Freeze(0, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, record()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("write after cartridge flag: %v", err)
	}
	// A tampered drive ignores the flag.
	if err := s.RawWrite(0, record()); err != nil {
		t.Fatal(err)
	}
}

func TestOpticalWORMWriteOnce(t *testing.T) {
	s := NewOpticalWORM(8)
	if err := s.Write(3, record()); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, record()); !errors.Is(err, ErrWriteOnce) {
		t.Fatalf("second write: %v", err)
	}
	// Physically impossible to overwrite, even raw.
	if err := s.RawWrite(3, record()); !errors.Is(err, ErrPhysicallyImpossible) {
		t.Fatalf("raw overwrite: %v", err)
	}
	// But unwritten blocks can be forged silently.
	if err := s.RawWrite(5, record()); err != nil {
		t.Fatal(err)
	}
	if s.Audit().TamperDetected {
		t.Fatal("optical audit cannot detect appended forgeries")
	}
}

func TestFuseWORMAllOrNothing(t *testing.T) {
	s := NewFuseWORM(8)
	if err := s.Freeze(2, 2); !errors.Is(err, ErrGranularity) {
		t.Fatalf("scoped freeze: %v", err)
	}
	if err := s.Freeze(0, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, record()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("write after fuse: %v", err)
	}
	if err := s.RawWrite(1, record()); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeAllStores(t *testing.T) {
	stores := []Store{
		NewSoftwareWORM(4), NewTapeWORM(4), NewOpticalWORM(4), NewFuseWORM(4),
	}
	for _, s := range stores {
		if err := s.Write(4, record()); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%s write: %v", s.Name(), err)
		}
		if _, err := s.Read(4); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%s read: %v", s.Name(), err)
		}
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	s := NewSoftwareWORM(4)
	got, err := s.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestRewriteAttackAllBaselinesUndetected(t *testing.T) {
	// The point of the baselines: every §2 technology either lets the
	// rewrite through undetected or resists it without being able to
	// prove anything.
	for _, s := range []Store{
		NewSoftwareWORM(8), NewTapeWORM(8), NewFuseWORM(8),
	} {
		r, err := RunRewriteAttack(s, 8)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !r.RewriteSucceeded {
			t.Errorf("%s resisted the raw rewrite — model wrong", s.Name())
		}
		if r.Detected {
			t.Errorf("%s detected tampering it cannot see", s.Name())
		}
	}
	// Optical resists the overwrite physically, but detects nothing.
	r, err := RunRewriteAttack(NewOpticalWORM(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.RewriteSucceeded {
		t.Error("optical medium was overwritten")
	}
	if r.Detected {
		t.Error("optical audit claims detection")
	}
}

func TestFlexibilityMatrix(t *testing.T) {
	// Scoped freezing: software yes, tape no, fuse no.
	cases := []struct {
		s      Store
		scoped bool
	}{
		{NewSoftwareWORM(8), true},
		{NewTapeWORM(8), false},
		{NewFuseWORM(8), false},
	}
	for _, c := range cases {
		r, err := RunRewriteAttack(c.s, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r.FreezeScoped != c.scoped {
			t.Errorf("%s scoped=%v, want %v", c.s.Name(), r.FreezeScoped, c.scoped)
		}
	}
}
