package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sero/internal/device"
)

// The incremental audit engine: continuous background verification
// (ROADMAP "continuous verification under adversarial load"). Where
// Audit is a stop-the-world pass over every heated line, the
// IncrementalAuditor verifies the same population a few lines at a
// time, taking the striped region locks only for the line under check,
// so verification coexists with live traffic and background cleaning.
//
// Round contract: a *round* is a snapshot of the heated-line
// population, taken when the previous round's worklist drains. Every
// line in the snapshot is verified exactly once per round; lines
// heated after the snapshot join the next round. With L lines and a
// step batch of b, a round completes in ceil(L/b) steps, so a tamper
// of an already-heated line is detected within at most
//
//	2 * ceil(L/b) steps
//
// — the tamper can land just after its line was checked this round
// (missing the rest of round r), but the full sweep of round r+1
// necessarily covers it. Piggyback hints (Observe) only *reorder* a
// round's remaining worklist, pulling recently read lines to the
// front; they never add or remove verifications, so the bound is
// unaffected and hot regions are simply checked earlier.
//
// Virtual-time contract: verification runs off-clock
// (device.VerifyLineOffClock) — audited and unaudited runs are
// byte-identical in virtual time, and the audit's cost is reported as
// shadow DeviceNS plus real wall-clock stripe-lock contention.

// IncrementalStats are the auditor's cumulative counters.
type IncrementalStats struct {
	// Rounds counts completed full sweeps of the heated-line
	// population.
	Rounds uint64
	// Steps counts Step calls that had at least one line to check.
	Steps uint64
	// LinesChecked counts line verifications performed.
	LinesChecked uint64
	// Findings counts verifications that reported tampering.
	Findings uint64
	// PiggybackHits counts lines whose check was reordered to the
	// front of a round by a read-observer hint.
	PiggybackHits uint64
	// Errors counts verifications that failed to run (distinct from
	// findings; a vanished line — coalesced or rescanned away — is
	// skipped silently and counts as neither).
	Errors uint64
	// Repairs counts findings the armed repairer healed (the repaired
	// line re-verified clean). Zero unless SetRepairer armed
	// self-healing.
	Repairs uint64
	// RepairFailures counts findings the repairer could not heal (the
	// repair call errored, or the line still verified tampered).
	RepairFailures uint64
	// DeviceNS is the shadow virtual time the checks would have cost
	// on the foreground clock (off-clock contract above).
	DeviceNS uint64
}

// StepReport describes one auditor step.
type StepReport struct {
	// Checked counts lines verified by this step.
	Checked int
	// Repaired counts this step's findings the armed repairer healed.
	Repaired int
	// Findings holds the tampered-line reports this step surfaced.
	Findings []device.VerifyReport
	// RoundComplete reports whether this step drained the current
	// round's worklist.
	RoundComplete bool
	// DeviceNS is this step's shadow device time.
	DeviceNS time.Duration
}

// lineRanges is an immutable snapshot of the current round's line
// extents, sorted by start, for lock-free PBA→line resolution on the
// read-observer path.
type lineRanges struct {
	starts []uint64
	ends   []uint64 // exclusive
}

// find returns the start of the line containing pba, or false.
func (lr *lineRanges) find(pba uint64) (uint64, bool) {
	i := sort.Search(len(lr.starts), func(i int) bool { return lr.ends[i] > pba })
	if i < len(lr.starts) && lr.starts[i] <= pba {
		return lr.starts[i], true
	}
	return 0, false
}

// IncrementalAuditor verifies a device's heated lines a few at a time
// in repeated rounds. Step and Observe are safe for concurrent use;
// Step itself is serialised internally, so callers may drive it from a
// background goroutine and inline from foreground paths at once.
type IncrementalAuditor struct {
	dev device.Dev

	// ranges is the round snapshot the lock-free Observe path reads.
	ranges atomic.Pointer[lineRanges]

	mu        sync.Mutex
	started   bool            // a first round snapshot has been taken
	remaining []uint64        // this round's unchecked line starts, queue order
	pending   map[uint64]bool // membership for remaining
	hints     []uint64        // observed lines to check first (subset of pending)
	hinted    map[uint64]bool // dedup for hints within the round
	repairer  Repairer
	stats     IncrementalStats
	findings  []device.VerifyReport
}

// Repairer heals one tampered heated line in place, given its (device
// address space) start, and returns the fresh line info. The striped
// array's RepairLine — reconstruct the true payloads from parity,
// splice fresh media, rewrite, re-heat — is the canonical
// implementation.
type Repairer func(start uint64) (device.LineInfo, error)

// SetRepairer arms self-healing: from now on every tamper finding is
// handed to fn, and the line is re-verified afterwards to confirm the
// heal (Stats.Repairs vs Stats.RepairFailures). The finding is still
// recorded either way — a healed tamper remains evidence. Repairs run
// on the foreground clock (they are real service actions, unlike the
// off-clock checks). Pass nil to disarm.
func (a *IncrementalAuditor) SetRepairer(fn Repairer) {
	a.mu.Lock()
	a.repairer = fn
	a.mu.Unlock()
}

// NewIncrementalAuditor builds an auditor over dev. It does not
// install any observer; call dev.SetReadObserver(a.Observe) to enable
// piggyback hints.
func NewIncrementalAuditor(dev device.Dev) *IncrementalAuditor {
	return &IncrementalAuditor{
		dev:     dev,
		pending: make(map[uint64]bool),
		hinted:  make(map[uint64]bool),
	}
}

// Observe notes that block pba was just read from the medium. If the
// block belongs to a heated line still unchecked this round, the line
// is pulled to the front of the round's worklist — the piggyback: the
// cleaner (or any reader) touching a region makes it cheap and timely
// to re-verify. Hot path: one atomic load and a binary search when the
// block is in no pending line; the mutex is taken only on a hit.
// Suitable as a device.ReadObserver.
func (a *IncrementalAuditor) Observe(pba uint64) {
	lr := a.ranges.Load()
	if lr == nil {
		return
	}
	start, ok := lr.find(pba)
	if !ok {
		return
	}
	a.mu.Lock()
	if a.pending[start] && !a.hinted[start] {
		a.hinted[start] = true
		a.hints = append(a.hints, start)
		a.stats.PiggybackHits++
	}
	a.mu.Unlock()
}

// Step verifies up to batch lines (batch <= 0 means 1) from the
// current round, starting a new round if the previous one has drained.
// Hinted lines are checked first. The heavy work — the hash checks —
// runs outside the auditor's mutex; only worklist bookkeeping holds
// it. Returns the step's report; Checked == 0 means the device has no
// heated lines at all.
func (a *IncrementalAuditor) Step(batch int) StepReport {
	if batch <= 0 {
		batch = 1
	}
	var rep StepReport
	for rep.Checked < batch {
		start, ok, roundEnded := a.next()
		if roundEnded {
			rep.RoundComplete = true
		}
		if !ok {
			break
		}
		vr, shadow, err := a.dev.VerifyLineOffClock(start)
		a.mu.Lock()
		a.stats.LinesChecked++
		a.stats.DeviceNS += uint64(shadow)
		if err != nil {
			if !errors.Is(err, device.ErrNotHeated) {
				// A line that exists but cannot be verified is
				// operationally suspect, but it is not a tamper
				// finding; count it separately.
				a.stats.Errors++
			}
			a.mu.Unlock()
			continue
		}
		tampered := vr.Tampered()
		var heal Repairer
		if tampered {
			a.stats.Findings++
			a.findings = append(a.findings, vr)
			rep.Findings = append(rep.Findings, vr)
			heal = a.repairer
		}
		a.mu.Unlock()
		if heal != nil {
			healed := false
			if _, rerr := heal(start); rerr == nil {
				// Confirm: the healed line must verify clean.
				if vr2, sh2, err2 := a.dev.VerifyLineOffClock(start); err2 == nil && !vr2.Tampered() {
					healed = true
					shadow += sh2
				}
			}
			a.mu.Lock()
			if healed {
				a.stats.Repairs++
				rep.Repaired++
			} else {
				a.stats.RepairFailures++
			}
			a.mu.Unlock()
		}
		rep.Checked++
		rep.DeviceNS += shadow
	}
	if rep.Checked > 0 {
		a.mu.Lock()
		a.stats.Steps++
		a.mu.Unlock()
	}
	return rep
}

// next pops the next line start to verify: hinted lines first, then
// queue order. When the round has drained it snapshots a fresh one and
// reports roundEnded. ok is false only when the device has no heated
// lines.
func (a *IncrementalAuditor) next() (start uint64, ok bool, roundEnded bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		// Hints first: each is a pending line pulled to the front.
		for len(a.hints) > 0 {
			h := a.hints[0]
			a.hints = a.hints[1:]
			if a.pending[h] {
				delete(a.pending, h)
				return h, true, roundEnded
			}
		}
		for len(a.remaining) > 0 {
			s := a.remaining[0]
			a.remaining = a.remaining[1:]
			if a.pending[s] {
				delete(a.pending, s)
				return s, true, roundEnded
			}
		}
		// Round drained: snapshot the next one. The very first
		// non-empty snapshot arms the auditor rather than completing
		// anything, and an empty population never completes rounds —
		// there is nothing to sweep.
		if a.started {
			a.stats.Rounds++
			roundEnded = true
		}
		lines := a.dev.Lines() // sorted by start
		if len(lines) == 0 {
			a.started = false
			a.ranges.Store(&lineRanges{})
			return 0, false, roundEnded
		}
		a.started = true
		lr := &lineRanges{
			starts: make([]uint64, len(lines)),
			ends:   make([]uint64, len(lines)),
		}
		a.remaining = make([]uint64, len(lines))
		for i, li := range lines {
			lr.starts[i] = li.Start
			lr.ends[i] = li.End()
			a.remaining[i] = li.Start
			a.pending[li.Start] = true
		}
		a.hinted = make(map[uint64]bool)
		a.hints = a.hints[:0]
		a.ranges.Store(lr)
	}
}

// Stats returns a copy of the cumulative counters.
func (a *IncrementalAuditor) Stats() IncrementalStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Findings returns the tampered-line reports accumulated so far, in
// detection order.
func (a *IncrementalAuditor) Findings() []device.VerifyReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]device.VerifyReport(nil), a.findings...)
}
