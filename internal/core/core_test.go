package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"sero/internal/device"
	"sero/internal/medium"
	"sero/internal/sim"
)

func testStore(t testing.TB, blocks int) *Store {
	t.Helper()
	p := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return NewStore(device.New(p))
}

func block(seed byte) []byte {
	b := make([]byte, device.DataBytes)
	for i := range b {
		b[i] = seed ^ byte(i)
	}
	return b
}

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(16)
	s1, err := a.AllocAligned(4, 4)
	if err != nil || s1 != 0 {
		t.Fatalf("first alloc %d %v", s1, err)
	}
	s2, err := a.AllocAligned(4, 4)
	if err != nil || s2 != 4 {
		t.Fatalf("second alloc %d %v", s2, err)
	}
	if a.Free() != 8 {
		t.Fatalf("free %d", a.Free())
	}
	a.Release(s1, 4)
	if a.Free() != 12 {
		t.Fatalf("free after release %d", a.Free())
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(32)
	if _, err := a.AllocAligned(1, 1); err != nil { // occupy block 0
		t.Fatal(err)
	}
	s, err := a.AllocAligned(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s%8 != 0 || s == 0 {
		t.Fatalf("misaligned line at %d", s)
	}
}

func TestAllocatorNoSpace(t *testing.T) {
	a := NewAllocator(8)
	if _, err := a.AllocAligned(8, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocAligned(1, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err %v", err)
	}
}

func TestAllocatorReserveConflict(t *testing.T) {
	a := NewAllocator(8)
	if err := a.Reserve(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(3, 2); err == nil {
		t.Fatal("overlapping reserve accepted")
	}
	if err := a.Reserve(6, 4); err == nil {
		t.Fatal("out-of-range reserve accepted")
	}
}

func TestAllocatorInvariantProperty(t *testing.T) {
	// Property: free count always equals the unused bitmap population.
	f := func(ops []uint8) bool {
		a := NewAllocator(64)
		var held []Extent
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				n := 1 << (op % 4) // 1,2,4,8
				s, err := a.AllocAligned(n, n)
				if err == nil {
					held = append(held, Extent{Start: s, Blocks: n})
				}
			} else {
				e := held[len(held)-1]
				held = held[:len(held)-1]
				a.Release(e.Start, e.Blocks)
			}
			count := 0
			for _, e := range a.FreeExtents() {
				count += e.Blocks
			}
			if count != a.Free() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationIndex(t *testing.T) {
	a := NewAllocator(16)
	if a.FragmentationIndex() != 0 {
		t.Fatal("fresh allocator fragmented")
	}
	// Carve holes: allocate all, release alternating pairs.
	if _, err := a.AllocAligned(16, 1); err != nil {
		t.Fatal(err)
	}
	a.Release(0, 2)
	a.Release(4, 2)
	a.Release(8, 2)
	fi := a.FragmentationIndex()
	if fi <= 0.5 {
		t.Fatalf("fragmentation %g, want > 0.5", fi)
	}
	if a.LargestFree() != 2 {
		t.Fatalf("largest free %d", a.LargestFree())
	}
}

func TestAllocatorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAllocator(0) },
		func() { NewAllocator(4).AllocAligned(0, 1) },
		func() { NewAllocator(4).Release(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStoreWriteHeatVerify(t *testing.T) {
	s := testStore(t, 32)
	blocks := [][]byte{block(1), block(2), block(3)}
	start, logN, err := s.WriteLine(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if logN != 2 { // 3 data + 1 hash -> 4 blocks
		t.Fatalf("logN %d", logN)
	}
	for i, want := range blocks {
		got, rerr := s.Read(start + 1 + uint64(i))
		if rerr != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d: %v", i, rerr)
		}
	}
	if _, err := s.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify(start)
	if err != nil || !rep.OK {
		t.Fatalf("verify %+v %v", rep, err)
	}
}

func TestStoreReleaseHeatedRefused(t *testing.T) {
	s := testStore(t, 16)
	start, logN, err := s.WriteLine([][]byte{block(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(start, 1<<logN); !errors.Is(err, ErrLineHeated) {
		t.Fatalf("release of heated line: %v", err)
	}
	// An unheated line can be released.
	start2, logN2, err := s.WriteLine([][]byte{block(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(start2, 1<<logN2); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleAges(t *testing.T) {
	s := testStore(t, 64)
	st0 := s.Lifecycle()
	if st0.ReadOnlyRatio != 0 || st0.FreeBlocks != 64 {
		t.Fatalf("fresh lifecycle %+v", st0)
	}
	for i := 0; i < 4; i++ {
		start, logN, err := s.WriteLine([][]byte{block(byte(i)), block(byte(i + 1)), block(byte(i + 2))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Heat(start, logN); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Lifecycle()
	if st.HeatedBlocks != 16 {
		t.Fatalf("heated blocks %d, want 16", st.HeatedBlocks)
	}
	if st.ReadOnlyRatio != 0.25 {
		t.Fatalf("RO ratio %g", st.ReadOnlyRatio)
	}
	if st.HeatEpoch != 4 {
		t.Fatalf("epoch %d", st.HeatEpoch)
	}
	if s.Decommissionable() {
		t.Fatal("quarter-full device decommissionable")
	}
}

func TestAuditCleanAndTampered(t *testing.T) {
	s := testStore(t, 32)
	var starts []uint64
	for i := 0; i < 3; i++ {
		start, logN, err := s.WriteLine([][]byte{block(byte(10 * i)), block(byte(10*i + 1))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Heat(start, logN); err != nil {
			t.Fatal(err)
		}
		starts = append(starts, start)
	}
	rep := s.Audit()
	if !rep.Clean() || len(rep.Reports) != 3 {
		t.Fatalf("clean audit failed: %s", rep.Summary())
	}

	// Tamper with the second line's data via raw medium access.
	evil := block(0xEE)
	bits := device.ForgedFrameBits(starts[1]+1, evil)
	base := int(starts[1]+1) * device.DotsPerBlock
	for i, b := range bits {
		s.Device().(*device.Device).Medium().MWB(base+i, b)
	}
	rep = s.Audit()
	if rep.Clean() || rep.TamperedLines != 1 {
		t.Fatalf("tampered audit: %s", rep.Summary())
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestRecoverRebuildsState(t *testing.T) {
	s := testStore(t, 32)
	start, logN, err := s.WriteLine([][]byte{block(5), block(6), block(7)})
	if err != nil {
		t.Fatal(err)
	}
	li, err := s.Heat(start, logN)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh store over the same device: recover from the medium.
	s2 := NewStore(s.Device())
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Lines) != 1 {
		t.Fatalf("recovery %+v", rep)
	}
	if rep.Lines[0].Record.Hash != li.Record.Hash {
		t.Fatal("recovered hash mismatch")
	}
	// The recovered line's blocks must be reserved: a fresh line
	// allocation must not land on them.
	got, err := s2.AllocLine(logN)
	if err != nil {
		t.Fatal(err)
	}
	if got == start {
		t.Fatal("recovered line handed out again")
	}
}

func TestWriteLineEmpty(t *testing.T) {
	s := testStore(t, 8)
	if _, _, err := s.WriteLine(nil); err == nil {
		t.Fatal("empty WriteLine accepted")
	}
}

func TestLineExponent(t *testing.T) {
	cases := map[int]uint8{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := lineExponent(n); got != want {
			t.Errorf("lineExponent(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDecommissionable(t *testing.T) {
	s := testStore(t, 4)
	start, logN, err := s.WriteLine([][]byte{block(1), block(2), block(3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	if !s.Decommissionable() {
		t.Fatal("fully heated device not decommissionable")
	}
}

func TestScrubberCleanRun(t *testing.T) {
	s := testStore(t, 64)
	start, logN, err := s.WriteLine([][]byte{block(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler(s.Device().Clock())
	scrub := NewScrubber(s, sched, 10*time.Millisecond)
	scrub.Start()
	sched.RunUntil(s.Device().Clock().Now() + 100*time.Millisecond)
	st := scrub.Stats()
	if st.Audits < 3 {
		t.Fatalf("only %d audits ran", st.Audits)
	}
	if st.Detections != 0 || st.FirstDetection != 0 {
		t.Fatalf("clean store produced detections: %+v", st)
	}
	if st.AuditTime <= 0 {
		t.Fatal("audits consumed no virtual time")
	}
}

func TestScrubberDetectsAndStops(t *testing.T) {
	s := testStore(t, 64)
	start, logN, err := s.WriteLine([][]byte{block(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	clock := s.Device().Clock()
	sched := sim.NewScheduler(clock)
	scrub := NewScrubber(s, sched, 5*time.Millisecond)
	scrub.StopOnDetect = true
	fired := 0
	scrub.OnTamper = func(rep AuditReport) {
		fired++
		if rep.Clean() {
			t.Error("OnTamper with clean report")
		}
	}
	scrub.Start()
	// Tamper between the second and third pass.
	sched.At(clock.Now()+12*time.Millisecond, func() {
		bits := device.ForgedFrameBits(start+1, block(0xBB))
		med := s.Device().(*device.Device).Medium()
		base := int(start+1) * device.DotsPerBlock
		for i, b := range bits {
			med.MWB(base+i, b)
		}
	})
	sched.RunUntil(clock.Now() + 200*time.Millisecond)
	st := scrub.Stats()
	if st.Detections != 1 || fired != 1 {
		t.Fatalf("detections %d fired %d", st.Detections, fired)
	}
	if st.FirstDetection == 0 {
		t.Fatal("no detection time recorded")
	}
	// StopOnDetect: no further passes after detection.
	if sched.Pending() != 0 {
		t.Fatalf("scrubber still scheduled after detection: %d pending", sched.Pending())
	}
}

func TestScrubberBadIntervalPanics(t *testing.T) {
	s := testStore(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewScrubber(s, sim.NewScheduler(s.Device().Clock()), 0)
}
