package core

import (
	"fmt"
	"strings"

	"sero/internal/device"
)

// AuditReport is the outcome of verifying every heated line on the
// store — the operation a compliance auditor runs (§1's SOX/retention
// motivation).
type AuditReport struct {
	// Reports holds one verify report per heated line, ordered by
	// start PBA.
	Reports []device.VerifyReport
	// TamperedLines counts lines with any evidence of tampering.
	TamperedLines int
	// Errors holds lines whose verification could not run at all.
	Errors []error
}

// Clean reports whether the audit found no tampering and no errors.
func (a AuditReport) Clean() bool {
	return a.TamperedLines == 0 && len(a.Errors) == 0
}

// Summary renders a one-line-per-line human-readable audit summary.
func (a AuditReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d lines, %d tampered, %d errors\n",
		len(a.Reports), a.TamperedLines, len(a.Errors))
	for _, r := range a.Reports {
		status := "ok"
		if r.Tampered() {
			var why []string
			if r.RecordDamaged {
				why = append(why, fmt.Sprintf("record damaged (%d HH cells)", r.TamperedCells))
			}
			if r.HashMismatch {
				why = append(why, "hash mismatch")
			}
			if len(r.ReadErrors) > 0 {
				why = append(why, fmt.Sprintf("%d unreadable blocks", len(r.ReadErrors)))
			}
			status = "TAMPERED: " + strings.Join(why, ", ")
		}
		fmt.Fprintf(&b, "  line %6d (+%d blocks): %s\n", r.Line.Start, r.Line.Blocks(), status)
	}
	return b.String()
}

// Audit verifies every heated line known to the store, fanning the
// per-line verifications out over the device's configured Concurrency.
func (s *Store) Audit() AuditReport {
	return s.AuditParallel(0)
}

// AuditParallel verifies every heated line with the given worker count
// (0 means the device's configured Concurrency, 1 means serial). The
// report is assembled in line-start order for any worker count — and
// on a noiseless medium is bit-identical across counts; only
// wall-clock time and the virtual-time accounting (max of per-worker
// elapsed, see device.VerifyLines) change.
func (s *Store) AuditParallel(workers int) AuditReport {
	lines := s.Lines() // sorted by start
	starts := make([]uint64, len(lines))
	for i, li := range lines {
		starts[i] = li.Start
	}
	outcomes := s.dev.VerifyLines(starts, workers)
	var rep AuditReport
	for i, out := range outcomes {
		if out.Err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("line %d: %w", starts[i], out.Err))
			rep.TamperedLines++ // unverifiable counts as suspect
			continue
		}
		rep.Reports = append(rep.Reports, out.Report)
		if out.Report.Tampered() {
			rep.TamperedLines++
		}
	}
	return rep
}
