// Package core implements the SERO store, the paper's primary
// contribution: management of a device that "begins life as a Write
// Many Read Many device, selected parts of which are subjected to
// Write Once operations, and which ends life as a Read-only device"
// (§1).
//
// The store owns block allocation (lines must be 2^N-aligned, so the
// allocator is buddy-style), orchestrates heat and verify operations,
// aggregates tamper reports, and tracks the WMRM→RO lifecycle the
// paper discusses in §8.
package core

import (
	"errors"
	"fmt"
)

// Allocator hands out 2^N-aligned runs of blocks. It is a simple
// bitmap-with-alignment allocator: line sizes are small powers of two
// and allocation happens on the write path where the device dominates
// the cost, so asymptotic cleverness buys nothing here.
type Allocator struct {
	used  []bool
	total int
	free  int
}

// ErrNoSpace reports that no aligned run of the requested size is
// free.
var ErrNoSpace = errors.New("core: no aligned free extent")

// NewAllocator covers blocks [0, total).
func NewAllocator(total int) *Allocator {
	if total <= 0 {
		panic(fmt.Sprintf("core: non-positive allocator size %d", total))
	}
	return &Allocator{used: make([]bool, total), total: total, free: total}
}

// Free returns the number of unallocated blocks.
func (a *Allocator) Free() int { return a.free }

// Total returns the managed block count.
func (a *Allocator) Total() int { return a.total }

// AllocAligned reserves a run of n blocks aligned to align (both
// powers of two not enforced here; align must divide the start). It
// scans aligned candidates first-fit.
func (a *Allocator) AllocAligned(n, align int) (start uint64, err error) {
	if n <= 0 || align <= 0 {
		panic(fmt.Sprintf("core: bad alloc n=%d align=%d", n, align))
	}
	for s := 0; s+n <= a.total; s += align {
		ok := true
		for i := s; i < s+n; i++ {
			if a.used[i] {
				ok = false
				break
			}
		}
		if ok {
			for i := s; i < s+n; i++ {
				a.used[i] = true
			}
			a.free -= n
			return uint64(s), nil
		}
	}
	return 0, fmt.Errorf("%w: %d blocks aligned %d", ErrNoSpace, n, align)
}

// Reserve marks a specific run used (e.g. recovered lines after Scan).
// Reserving an already-used block is an error.
func (a *Allocator) Reserve(start uint64, n int) error {
	if int(start)+n > a.total {
		return fmt.Errorf("core: reserve [%d,%d) beyond %d", start, int(start)+n, a.total)
	}
	for i := int(start); i < int(start)+n; i++ {
		if a.used[i] {
			return fmt.Errorf("core: block %d already reserved", i)
		}
	}
	for i := int(start); i < int(start)+n; i++ {
		a.used[i] = true
	}
	a.free -= n
	return nil
}

// Release returns a run to the free pool (only for never-heated
// blocks; the store enforces that).
func (a *Allocator) Release(start uint64, n int) {
	for i := int(start); i < int(start)+n; i++ {
		if i >= a.total || !a.used[i] {
			panic(fmt.Sprintf("core: releasing unallocated block %d", i))
		}
		a.used[i] = false
	}
	a.free += n
}

// FreeExtents returns the free runs, for fragmentation diagnostics
// (§4.1: "the WMRM area not only shrinks but it might also become
// fragmented").
func (a *Allocator) FreeExtents() []Extent {
	var out []Extent
	i := 0
	for i < a.total {
		if a.used[i] {
			i++
			continue
		}
		j := i
		for j < a.total && !a.used[j] {
			j++
		}
		out = append(out, Extent{Start: uint64(i), Blocks: j - i})
		i = j
	}
	return out
}

// Extent is a contiguous run of blocks.
type Extent struct {
	// Start is the extent's first PBA.
	Start uint64
	// Blocks is the run length.
	Blocks int
}

// LargestFree returns the size of the largest free extent.
func (a *Allocator) LargestFree() int {
	best := 0
	for _, e := range a.FreeExtents() {
		if e.Blocks > best {
			best = e.Blocks
		}
	}
	return best
}

// FragmentationIndex returns 1 − largestFree/totalFree: 0 means one
// contiguous free region, approaching 1 means heavy fragmentation.
func (a *Allocator) FragmentationIndex() float64 {
	if a.free == 0 {
		return 0
	}
	return 1 - float64(a.LargestFree())/float64(a.free)
}
