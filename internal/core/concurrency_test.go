package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sero/internal/device"
	"sero/internal/medium"
)

// Concurrency stress tests: the sharded store must survive mixed
// Write/WriteLine/Heat/Verify/Audit traffic from many goroutines under
// the race detector, and parallel audits must produce reports
// identical to serial ones.

func stressStore(t testing.TB, blocks int, concurrency int) *Store {
	t.Helper()
	p := device.DefaultParams(blocks)
	p.Concurrency = concurrency
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return NewStore(device.New(p))
}

func stressBlock(tag byte, i int) []byte {
	b := make([]byte, device.DataBytes)
	copy(b, fmt.Sprintf("stress %c %d", tag, i))
	return b
}

// TestStressParallelTraffic hammers one store from ~16 goroutines:
// raw block writers and readers, line writers that heat their lines,
// verifiers chasing the heated lines, and full audits — all at once.
func TestStressParallelTraffic(t *testing.T) {
	st := stressStore(t, 4096, 4)

	// Seed a few heated lines so verifiers and auditors have work from
	// the first moment.
	var seeded []uint64
	for i := 0; i < 4; i++ {
		start, logN, err := st.WriteLine([][]byte{stressBlock('s', i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Heat(start, logN); err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, start)
	}

	// Raw-block region, far from line allocations: reserve it so
	// WriteLine never lands there.
	rawStart, err := st.Alloc(256, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// 4 raw writers + 4 readers over the reserved region.
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				pba := rawStart + uint64((g*25+i)%256)
				if err := st.Write(pba, stressBlock('w', int(pba))); err != nil {
					fail(err)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				pba := rawStart + uint64((g*25+i)%256)
				data, err := st.Read(pba)
				if err != nil {
					continue // not yet written by a writer: uncorrectable is fine
				}
				if !bytes.Contains(data, []byte("stress")) && data[0] != 0 {
					fail(fmt.Errorf("block %d holds garbage", pba))
					return
				}
			}
		}(g)
	}

	// 4 line writers that heat and then verify their own lines.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				start, logN, err := st.WriteLine([][]byte{
					stressBlock('l', g*100+i), stressBlock('m', g*100+i),
				})
				if err != nil {
					fail(err)
					return
				}
				if _, err := st.Heat(start, logN); err != nil {
					fail(err)
					return
				}
				rep, err := st.Verify(start)
				if err != nil {
					fail(err)
					return
				}
				if !rep.OK {
					fail(fmt.Errorf("fresh line %d tampered", start))
					return
				}
			}
		}(g)
	}

	// 2 verifiers chasing the seeded lines.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, start := range seeded {
					rep, err := st.Verify(start)
					if err != nil {
						fail(err)
						return
					}
					if !rep.OK {
						fail(fmt.Errorf("seeded line %d tampered", start))
						return
					}
				}
			}
		}()
	}

	// 2 full auditors running concurrently with everything above.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				rep := st.Audit()
				if rep.TamperedLines != 0 {
					fail(fmt.Errorf("audit saw %d tampered lines", rep.TamperedLines))
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The dust settled: a final serial audit must be clean and cover
	// every line ever heated.
	rep := st.AuditParallel(1)
	if !rep.Clean() {
		t.Fatalf("final audit not clean:\n%s", rep.Summary())
	}
	if len(rep.Reports) != 4+4*5 {
		t.Fatalf("final audit covered %d lines, want %d", len(rep.Reports), 24)
	}
}

// TestAuditParallelMatchesSerial locks in the determinism contract:
// the audit report must be byte-identical for any worker count.
func TestAuditParallelMatchesSerial(t *testing.T) {
	st := stressStore(t, 1024, 1)
	for i := 0; i < 24; i++ {
		start, logN, err := st.WriteLine([][]byte{stressBlock('a', i), stressBlock('b', i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Heat(start, logN); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper with one member block so the comparison covers tampered
	// reports too: rewrite it with a perfectly consistent forged frame
	// (valid CRC and parity), which only the line hash can catch.
	victim := st.Lines()[7]
	med := st.Device().(*device.Device).Medium()
	forged := make([]byte, device.DataBytes)
	copy(forged, "these are not the records you wrote")
	bits := device.ForgedFrameBits(victim.Start+1, forged)
	base := int(victim.Start+1) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}

	serial := st.AuditParallel(1)
	for _, workers := range []int{2, 4, 8} {
		par := st.AuditParallel(workers)
		if !reflect.DeepEqual(serial.Reports, par.Reports) {
			t.Fatalf("workers=%d: reports differ from serial", workers)
		}
		if serial.TamperedLines != par.TamperedLines || len(serial.Errors) != len(par.Errors) {
			t.Fatalf("workers=%d: summary differs from serial", workers)
		}
	}
	if serial.TamperedLines != 1 {
		t.Fatalf("expected exactly the tampered victim, got %d", serial.TamperedLines)
	}
}

// TestParallelAuditVirtualTime locks in the documented virtual-clock
// semantics: a K-worker audit advances the device clock by roughly the
// slowest worker's share, i.e. much less than the serial sum.
func TestParallelAuditVirtualTime(t *testing.T) {
	st := stressStore(t, 2048, 1)
	for i := 0; i < 32; i++ {
		start, logN, err := st.WriteLine([][]byte{stressBlock('v', i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Heat(start, logN); err != nil {
			t.Fatal(err)
		}
	}
	clock := st.Device().Clock()

	t0 := clock.Now()
	st.AuditParallel(1)
	serial := clock.Now() - t0

	t1 := clock.Now()
	st.AuditParallel(8)
	parallel := clock.Now() - t1

	if parallel <= 0 || serial <= 0 {
		t.Fatalf("audits consumed no virtual time (serial %v, parallel %v)", serial, parallel)
	}
	// 32 uniform lines over 8 workers: each worker verifies ~4 lines,
	// so the parallel pass should cost well under half the serial one.
	if parallel*2 >= serial {
		t.Fatalf("parallel audit %v not faster than half of serial %v", parallel, serial)
	}
}
