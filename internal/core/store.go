package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sero/internal/device"
)

// Store is the SERO store: a device plus the policy that turns its six
// sector operations into a safe WMRM+WO service. The zero value is not
// usable; construct with NewStore.
//
// The store is safe for concurrent use and no longer serialises client
// traffic behind one mutex: block and line I/O goes straight to the
// device, which shards its locking by line region, so operations on
// distinct lines proceed in parallel. The heated-line registry lives
// in the device (the authoritative view, shared with other clients of
// the same device such as the file-system layer); the store's own
// lock only covers the allocator.
type Store struct {
	dev device.Dev

	// alMu guards the allocator and nothing else: no device I/O ever
	// runs under it, so allocation never serialises against in-flight
	// reads or writes. Methods that need both (WriteLine, Release,
	// Lifecycle) gather their device state outside the lock.
	alMu sync.Mutex
	al   *Allocator

	// epoch counts heat operations, for audit ordering.
	epoch atomic.Uint64
}

// Store-level errors.
var (
	// ErrNotAllocated reports I/O to a block the store has not handed
	// out.
	ErrNotAllocated = errors.New("core: block not allocated")
	// ErrLineHeated reports an attempt to release or rewrite a heated
	// line.
	ErrLineHeated = errors.New("core: line is heated (read-only)")
)

// NewStore wraps a device.
func NewStore(dev device.Dev) *Store {
	return &Store{
		dev: dev,
		al:  NewAllocator(dev.Blocks()),
	}
}

// Device exposes the underlying device (read-only use: clocks, stats).
func (s *Store) Device() device.Dev { return s.dev }

// Concurrency returns the device's configured fan-out width, which
// Audit and Recover use by default.
func (s *Store) Concurrency() int { return s.dev.Concurrency() }

// Alloc reserves n blocks with the given alignment and returns the
// first PBA.
func (s *Store) Alloc(n, align int) (uint64, error) {
	s.alMu.Lock()
	defer s.alMu.Unlock()
	return s.al.AllocAligned(n, align)
}

// AllocLine reserves a properly aligned line of 1<<logN blocks.
func (s *Store) AllocLine(logN uint8) (uint64, error) {
	n := 1 << logN
	s.alMu.Lock()
	defer s.alMu.Unlock()
	return s.al.AllocAligned(n, n)
}

// Release returns an unheated run to the free pool.
func (s *Store) Release(start uint64, n int) error {
	lines := s.dev.Lines()
	s.alMu.Lock()
	defer s.alMu.Unlock()
	for _, li := range lines {
		if start < li.End() && li.Start < start+uint64(n) {
			return fmt.Errorf("%w: [%d,%d)", ErrLineHeated, li.Start, li.End())
		}
	}
	s.al.Release(start, n)
	return nil
}

// Write writes one data block through the device's batched write path
// (a one-block run: one command, one settle).
func (s *Store) Write(pba uint64, data []byte) error {
	return s.dev.WriteBlocks(pba, [][]byte{data})
}

// Read reads one data block.
func (s *Store) Read(pba uint64) ([]byte, error) {
	return s.dev.MRS(pba)
}

// WriteLine allocates a line big enough for the given blocks (plus
// block 0 for the future hash), writes them, and returns the line
// start. blocks[i] lands at start+1+i; any slack at the end of the
// 2^N line is zero-padded so the line is heatable as a unit. The
// member blocks go to the medium as one batched line-granular command
// (allocation happens first, outside any I/O, under the allocator's
// own lock). Use Heat to freeze the line later.
func (s *Store) WriteLine(blocks [][]byte) (start uint64, logN uint8, err error) {
	if len(blocks) == 0 {
		return 0, 0, errors.New("core: WriteLine with no blocks")
	}
	logN = lineExponent(len(blocks) + 1)
	start, err = s.AllocLine(logN)
	if err != nil {
		return 0, 0, err
	}
	if werr := s.dev.WriteLineBatch(start, logN, blocks); werr != nil {
		return 0, 0, fmt.Errorf("core: writing line at %d: %w", start, werr)
	}
	return start, logN, nil
}

// lineExponent returns the smallest logN with 1<<logN >= n (minimum 1).
func lineExponent(n int) uint8 {
	logN := uint8(1)
	for 1<<logN < n {
		logN++
	}
	return logN
}

// Heat freezes the line starting at start: after this the line is
// read-only and tamper-evident.
func (s *Store) Heat(start uint64, logN uint8) (device.LineInfo, error) {
	li, err := s.dev.HeatLine(start, logN)
	if err != nil {
		return device.LineInfo{}, err
	}
	s.epoch.Add(1)
	return li, nil
}

// Verify checks one heated line.
func (s *Store) Verify(start uint64) (device.VerifyReport, error) {
	return s.dev.VerifyLine(start)
}

// Lines returns the store's view of heated lines.
func (s *Store) Lines() []device.LineInfo {
	return s.dev.Lines()
}

// Recover rebuilds the store's state from the medium (device Scan),
// reserving recovered lines in the allocator. It returns the audit
// report of the scan. The scan itself fans out over the device's
// configured Concurrency.
func (s *Store) Recover() (RecoveryReport, error) {
	recovered, unparseable, err := s.dev.Scan()
	if err != nil {
		return RecoveryReport{}, err
	}
	s.alMu.Lock()
	defer s.alMu.Unlock()
	s.al = NewAllocator(s.dev.Blocks())
	rep := RecoveryReport{Unparseable: unparseable}
	for _, li := range recovered {
		if rerr := s.al.Reserve(li.Start, int(li.Blocks())); rerr != nil {
			rep.Conflicts = append(rep.Conflicts, li.Start)
			continue
		}
		rep.Lines = append(rep.Lines, li)
	}
	return rep, nil
}

// RecoveryReport summarises a Recover pass.
type RecoveryReport struct {
	// Lines are the heated lines recovered and re-reserved.
	Lines []device.LineInfo
	// Unparseable lists blocks with electrical data that is not a
	// valid heat record — raw tampering or shredded blocks.
	Unparseable []uint64
	// Conflicts lists recovered lines that overlap (should be
	// impossible on an honestly operated device).
	Conflicts []uint64
}

// Clean reports whether recovery found no anomalies.
func (r RecoveryReport) Clean() bool {
	return len(r.Unparseable) == 0 && len(r.Conflicts) == 0
}

// LifecycleStats captures the WMRM→RO ageing of the device (§8: "over
// the lifetime of the device, the read/write area gradually shrinks,
// and the read-only area grows").
type LifecycleStats struct {
	// TotalBlocks is the device capacity in blocks.
	TotalBlocks int
	// FreeBlocks counts allocatable blocks remaining.
	FreeBlocks    int
	HeatedBlocks  int     // blocks inside heated lines
	ReadOnlyRatio float64 // heated / total
	Fragmentation float64 // allocator fragmentation index
	// LargestFreeRun is the longest contiguous free extent in blocks.
	LargestFreeRun int
	// HeatEpoch counts heat operations performed so far.
	HeatEpoch uint64
	// VirtualTime is the device clock at the snapshot.
	VirtualTime time.Duration
}

// Lifecycle returns current lifecycle statistics. Heated lines are
// taken from the device registry, which is authoritative even when
// lines were heated through another client of the same device (e.g.
// the file system layer).
func (s *Store) Lifecycle() LifecycleStats {
	lines := s.dev.Lines()
	s.alMu.Lock()
	defer s.alMu.Unlock()
	heated := 0
	for _, li := range lines {
		heated += int(li.Blocks())
	}
	return LifecycleStats{
		TotalBlocks:    s.al.Total(),
		FreeBlocks:     s.al.Free(),
		HeatedBlocks:   heated,
		ReadOnlyRatio:  float64(heated) / float64(s.al.Total()),
		Fragmentation:  s.al.FragmentationIndex(),
		LargestFreeRun: s.al.LargestFree(),
		HeatEpoch:      s.epoch.Load(),
		VirtualTime:    s.dev.Clock().Now(),
	}
}

// Decommissionable reports whether the device has aged into a pure
// read-only device (no free WMRM space left worth using): §8 "The
// medium can safely be decommissioned by the time all data has
// expired."
func (s *Store) Decommissionable() bool {
	st := s.Lifecycle()
	return st.FreeBlocks == 0 || st.ReadOnlyRatio > 0.99
}
