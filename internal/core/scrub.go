package core

import (
	"fmt"
	"time"

	"sero/internal/sim"
)

// Scrubber periodically audits every heated line in the background —
// the operational pattern that turns tamper *evidence* into tamper
// *detection latency*. The scrubber runs on the device's own virtual
// clock: each audit consumes real (virtual) device time, so scrubbing
// more often costs bandwidth the foreground load would otherwise get.
// Experiment E13 sweeps that trade-off.
type Scrubber struct {
	st    *Store
	sched *sim.Scheduler

	// Interval is the virtual time between audit passes.
	Interval time.Duration

	// Concurrency is the worker count each audit pass fans out over
	// (0 means the device's configured Concurrency, 1 means serial).
	// Parallel passes detect tampering after less virtual time per
	// pass — the device clock advances by the slowest worker instead
	// of the whole-audit sum — at the cost of occupying that many
	// verification planes.
	Concurrency int
	// OnTamper is invoked (once) when an audit first finds tampering;
	// the scrubber keeps running afterwards unless StopOnDetect is
	// set.
	OnTamper func(AuditReport)
	// StopOnDetect stops scheduling after the first detection.
	StopOnDetect bool

	stats   ScrubStats
	stopped bool
}

// ScrubStats summarises scrubber activity.
type ScrubStats struct {
	// Audits counts completed passes.
	Audits int
	// AuditTime is total virtual time spent auditing.
	AuditTime time.Duration
	// Detections counts passes that found tampering.
	Detections int
	// FirstDetection is the virtual time of the first tampered audit
	// (zero when none).
	FirstDetection time.Duration
}

// NewScrubber builds a scrubber for st driven by sched, which must run
// on the device's clock so audit cost and schedule share one timeline.
func NewScrubber(st *Store, sched *sim.Scheduler, interval time.Duration) *Scrubber {
	if interval <= 0 {
		panic(fmt.Sprintf("core: non-positive scrub interval %v", interval))
	}
	return &Scrubber{st: st, sched: sched, Interval: interval}
}

// Stats returns a copy of the scrubber statistics.
func (s *Scrubber) Stats() ScrubStats { return s.stats }

// Start schedules the first pass one interval from now.
func (s *Scrubber) Start() {
	s.sched.After(s.Interval, s.pass)
}

// Stop prevents further passes from being scheduled.
func (s *Scrubber) Stop() { s.stopped = true }

func (s *Scrubber) pass() {
	if s.stopped {
		return
	}
	clock := s.st.Device().Clock()
	t0 := clock.Now()
	rep := s.st.AuditParallel(s.Concurrency)
	s.stats.Audits++
	s.stats.AuditTime += clock.Now() - t0
	if !rep.Clean() {
		s.stats.Detections++
		if s.stats.FirstDetection == 0 {
			s.stats.FirstDetection = clock.Now()
			if s.OnTamper != nil {
				s.OnTamper(rep)
			}
		}
		if s.StopOnDetect {
			s.stopped = true
			return
		}
	}
	s.sched.After(s.Interval, s.pass)
}
