package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("clock at %v, want 8ms", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestStopwatch(t *testing.T) {
	var c Clock
	sw := NewStopwatch(&c)
	c.Advance(time.Second)
	if sw.Elapsed() != time.Second {
		t.Fatalf("elapsed %v", sw.Elapsed())
	}
}

func TestSchedulerOrdering(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if c.Now() != 30 {
		t.Fatalf("clock %v, want 30", c.Now())
	}
}

func TestSchedulerTieBreaksFIFO(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	var order []int
	s.At(10, func() { order = append(order, 1) })
	s.At(10, func() { order = append(order, 2) })
	s.Run()
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("tie order %v", order)
	}
}

func TestSchedulerNested(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	hit := false
	s.At(10, func() {
		s.After(5, func() { hit = true })
	})
	s.Run()
	if !hit {
		t.Fatal("nested event did not run")
	}
	if c.Now() != 15 {
		t.Fatalf("clock %v, want 15", c.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	var ran []int
	s.At(10, func() { ran = append(ran, 10) })
	s.At(50, func() { ran = append(ran, 50) })
	s.RunUntil(30)
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("ran %v", ran)
	}
	if c.Now() != 30 {
		t.Fatalf("clock %v, want 30", c.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	var c Clock
	c.Advance(100)
	s := NewScheduler(&c)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestSchedulerStepEmptyPanics(t *testing.T) {
	s := NewScheduler(&Clock{})
	defer func() {
		if recover() == nil {
			t.Fatal("Step on empty queue did not panic")
		}
	}()
	s.Step()
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(4)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %g", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean %g, want ~5", mean)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline("x", 0)
	for i := 1; i <= 10; i++ {
		tl.Record(time.Duration(i), float64(i))
	}
	if tl.Len() != 10 {
		t.Fatalf("len %d", tl.Len())
	}
	if tl.Mean() != 5.5 {
		t.Fatalf("mean %g", tl.Mean())
	}
	if q := tl.Quantile(0); q != 1 {
		t.Fatalf("q0 %g", q)
	}
	if q := tl.Quantile(1); q != 10 {
		t.Fatalf("q1 %g", q)
	}
	if q := tl.Quantile(0.5); q < 4 || q > 7 {
		t.Fatalf("median %g", q)
	}
}

func TestTimelineBounded(t *testing.T) {
	tl := NewTimeline("x", 3)
	for i := 0; i < 10; i++ {
		tl.Record(time.Duration(i), float64(i))
	}
	if tl.Len() != 3 {
		t.Fatalf("bounded len %d", tl.Len())
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline("x", 0)
	if tl.Mean() != 0 || tl.Quantile(0.5) != 0 {
		t.Fatal("empty timeline stats not zero")
	}
}
