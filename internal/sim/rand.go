package sim

import "math"

// RNG is a small deterministic pseudo-random generator
// (xorshift64star). The repository avoids math/rand so that every
// stochastic component (read noise, workload arrivals, attack fuzzing)
// is seeded explicitly and reproducible across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal variate using the polar
// Box-Muller method. Used for analog read-signal noise.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*ln(s)/s)
		}
	}
}

// Bool returns a pseudo-random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exponential returns an exponentially distributed variate with the
// given mean. Used for workload inter-arrival times.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * ln(u)
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
