// Package sim provides a deterministic virtual clock and a small
// discrete-event scheduler used by all latency experiments. Nothing in
// the repository measures wall time; every latency figure is derived
// from this virtual clock so experiments are exactly reproducible.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Clock is a virtual nanosecond counter. The zero value is a clock at
// time zero, ready to use. Clock is safe for concurrent use: Advance
// is an atomic add, so concurrent clients each charge their own
// latency and the clock accumulates total device work (the serialised
// equivalent). Components that want parallel-hardware semantics run
// workers against private clocks and advance a shared clock by the
// maximum per-worker elapsed time — see the device's verification
// engine.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time since the start of the
// simulation.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d. Advance panics if d is
// negative: virtual time never runs backwards, and a negative advance
// always indicates a latency-model bug rather than a recoverable
// condition.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now.Add(int64(d))
}

// Reset rewinds the clock to zero. Intended for reusing one device
// across benchmark iterations.
func (c *Clock) Reset() { c.now.Store(0) }

// AdvanceTo raises the clock to t if it is currently behind it; a t at
// or before the current reading is a no-op. This is the slowest-worker
// join for composites that keep one clock per member device and expose
// the maximum as their own time: after an operation fans across
// members, the composite raises its shared clock to the furthest
// member clock. The raise is a CAS loop, so concurrent AdvanceTo and
// Advance calls never move the clock backwards.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Stopwatch measures an interval of virtual time.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch on c.
func NewStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the virtual time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Event is a scheduled callback in a discrete-event simulation.
type Event struct {
	At time.Duration
	Fn func()

	seq int // tie-breaker preserving schedule order
}

// Scheduler runs events in virtual-time order against a Clock. It is a
// minimal calendar queue sufficient for the background-scrub and
// workload-arrival processes used in the experiments.
type Scheduler struct {
	clock  *Clock
	events []Event
	next   int
}

// NewScheduler returns a scheduler driving c.
func NewScheduler(c *Clock) *Scheduler {
	return &Scheduler{clock: c}
}

// Clock returns the clock the scheduler drives.
func (s *Scheduler) Clock() *Clock { return s.clock }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics, as it would require time travel.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, s.clock.Now()))
	}
	s.nextSeq()
	s.events = append(s.events, Event{At: t, Fn: fn, seq: s.next})
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.clock.Now()+d, fn)
}

func (s *Scheduler) nextSeq() { s.next++ }

// Pending reports how many events have not yet run.
func (s *Scheduler) Pending() int { return len(s.events) }

// Run executes events in time order until the queue is empty, advancing
// the clock to each event's timestamp. Events scheduled by running
// events are honoured.
func (s *Scheduler) Run() {
	for len(s.events) > 0 {
		s.Step()
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to the deadline. Later events remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for {
		i := s.earliest()
		if i < 0 || s.events[i].At > deadline {
			break
		}
		s.pop(i)
	}
	if s.clock.Now() < deadline {
		s.clock.Advance(deadline - s.clock.Now())
	}
}

// Step runs the single earliest pending event. It panics if no events
// are pending.
func (s *Scheduler) Step() {
	i := s.earliest()
	if i < 0 {
		panic("sim: Step with no pending events")
	}
	s.pop(i)
}

func (s *Scheduler) earliest() int {
	if len(s.events) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(s.events); i++ {
		if s.events[i].At < s.events[best].At ||
			(s.events[i].At == s.events[best].At && s.events[i].seq < s.events[best].seq) {
			best = i
		}
	}
	return best
}

func (s *Scheduler) pop(i int) {
	ev := s.events[i]
	s.events = append(s.events[:i], s.events[i+1:]...)
	if ev.At > s.clock.Now() {
		s.clock.Advance(ev.At - s.clock.Now())
	}
	ev.Fn()
}

// Timeline collects (time, value) samples of a named metric, e.g.
// cleaner bandwidth over the course of an experiment.
type Timeline struct {
	Name    string
	Times   []time.Duration
	Values  []float64
	maxKeep int
}

// NewTimeline creates a timeline. maxKeep bounds memory; 0 means
// unbounded.
func NewTimeline(name string, maxKeep int) *Timeline {
	return &Timeline{Name: name, maxKeep: maxKeep}
}

// Record appends a sample.
func (t *Timeline) Record(at time.Duration, v float64) {
	if t.maxKeep > 0 && len(t.Times) >= t.maxKeep {
		return
	}
	t.Times = append(t.Times, at)
	t.Values = append(t.Values, v)
}

// Len returns the number of samples recorded.
func (t *Timeline) Len() int { return len(t.Times) }

// Mean returns the arithmetic mean of the recorded values, or 0 when
// empty.
func (t *Timeline) Mean() float64 {
	if len(t.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range t.Values {
		sum += v
	}
	return sum / float64(len(t.Values))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded values
// using nearest-rank on a sorted copy, or 0 when empty.
func (t *Timeline) Quantile(q float64) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), t.Values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
