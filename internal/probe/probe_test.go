package probe

import (
	"testing"
	"time"

	"sero/internal/sim"
)

func TestTimingRatios(t *testing.T) {
	tm := DefaultTiming()
	// §3: erb is at least 5 times slower than mrb.
	if tm.ERB() < 5*tm.MRB() {
		t.Fatalf("erb %v < 5×mrb %v", tm.ERB(), tm.MRB())
	}
	// ewb is slower than mwb because of the heating dwell.
	if tm.EWB() <= tm.MWB() {
		t.Fatalf("ewb %v not slower than mwb %v", tm.EWB(), tm.MWB())
	}
}

func TestActuatorSeekCost(t *testing.T) {
	var c sim.Clock
	a := NewActuator(DefaultTiming(), DefaultGeometry(), &c)
	a.SeekTo(Position{X: 10, Y: 0})
	want := 10*DefaultTiming().SeekPerMicron + DefaultTiming().Settle
	if c.Now() != want {
		t.Fatalf("seek cost %v, want %v", c.Now(), want)
	}
}

func TestActuatorDiagonalUsesLongerAxis(t *testing.T) {
	var c sim.Clock
	a := NewActuator(DefaultTiming(), DefaultGeometry(), &c)
	a.SeekTo(Position{X: 3, Y: 10})
	want := 10*DefaultTiming().SeekPerMicron + DefaultTiming().Settle
	if c.Now() != want {
		t.Fatalf("diagonal seek cost %v, want %v (axes move concurrently)", c.Now(), want)
	}
}

func TestActuatorZeroSeekFree(t *testing.T) {
	var c sim.Clock
	a := NewActuator(DefaultTiming(), DefaultGeometry(), &c)
	a.SeekTo(Position{X: 5, Y: 5})
	before := c.Now()
	a.SeekTo(Position{X: 5, Y: 5})
	if c.Now() != before {
		t.Fatal("zero-distance seek charged time")
	}
}

func TestActuatorOutOfRangePanics(t *testing.T) {
	a := NewActuator(DefaultTiming(), DefaultGeometry(), &sim.Clock{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-field seek did not panic")
		}
	}()
	a.SeekTo(Position{X: 1e6, Y: 0})
}

func TestActuatorStats(t *testing.T) {
	var c sim.Clock
	a := NewActuator(DefaultTiming(), DefaultGeometry(), &c)
	a.SeekTo(Position{X: 10, Y: 0})
	a.SeekTo(Position{X: 10, Y: 20})
	seeks, total, microns := a.SeekStats()
	if seeks != 2 {
		t.Fatalf("seeks %d", seeks)
	}
	if total != c.Now() {
		t.Fatalf("seek time %v clock %v", total, c.Now())
	}
	if microns != 30 {
		t.Fatalf("travel %g", microns)
	}
}

func TestArrayParallelism(t *testing.T) {
	// Probes() consecutive dots at one sled position transfer in a
	// single bit-cell round.
	var c sim.Clock
	g := DefaultGeometry()
	a := NewArray(DefaultTiming(), g, 100, &c)
	a.ChargeMagneticRead(0, g.Probes())
	want := DefaultTiming().MRB() // one round, no seek from origin
	if c.Now() != want {
		t.Fatalf("parallel read cost %v, want %v", c.Now(), want)
	}
}

func TestArraySequentialCheaperThanRandom(t *testing.T) {
	tm := DefaultTiming()
	g := DefaultGeometry()

	var seq sim.Clock
	as := NewArray(tm, g, 100, &seq)
	const dots = 1 << 15
	as.ChargeMagneticRead(0, dots)

	var rnd sim.Clock
	ar := NewArray(tm, g, 100, &rnd)
	rng := sim.NewRNG(3)
	for i := 0; i < dots/g.Probes(); i++ {
		start := rng.Intn(ar.Capacity() - g.Probes())
		ar.ChargeMagneticRead(start, g.Probes())
	}
	if seq.Now() >= rnd.Now() {
		t.Fatalf("sequential %v not cheaper than random %v", seq.Now(), rnd.Now())
	}
}

func TestArrayCapacity(t *testing.T) {
	g := Geometry{ProbeRows: 2, ProbeCols: 2, FieldMicrons: 1}
	a := NewArray(DefaultTiming(), g, 100, &sim.Clock{})
	// 1 µm field at 100 nm pitch = 10 dots per side = 100 positions,
	// ×4 probes = 400 dots.
	if a.Capacity() != 400 {
		t.Fatalf("capacity %d, want 400", a.Capacity())
	}
}

func TestPositionOfSerpentine(t *testing.T) {
	g := Geometry{ProbeRows: 1, ProbeCols: 1, FieldMicrons: 1}
	a := NewArray(DefaultTiming(), g, 100, &sim.Clock{})
	// Row 0 goes left→right, row 1 right→left.
	p0 := a.PositionOf(0)
	p9 := a.PositionOf(9)
	p10 := a.PositionOf(10)
	if p0.X != 0 || p0.Y != 0 {
		t.Fatalf("first dot at %+v", p0)
	}
	if p9.Y != 0 {
		t.Fatal("dot 9 not in row 0")
	}
	// Dot 10 starts row 1 at the right edge (serpentine): X must equal
	// dot 9's X.
	if p10.X != p9.X {
		t.Fatalf("serpentine broken: %+v vs %+v", p10, p9)
	}
}

func TestPositionOutOfRangePanics(t *testing.T) {
	g := Geometry{ProbeRows: 1, ProbeCols: 1, FieldMicrons: 1}
	a := NewArray(DefaultTiming(), g, 100, &sim.Clock{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.PositionOf(a.Capacity())
}

func TestElectricChargesMoreThanMagnetic(t *testing.T) {
	g := DefaultGeometry()
	var cm, ce sim.Clock
	am := NewArray(DefaultTiming(), g, 100, &cm)
	ae := NewArray(DefaultTiming(), g, 100, &ce)
	am.ChargeMagneticRead(0, 1024)
	ae.ChargeElectricRead(0, 1024)
	if ce.Now() < 5*cm.Now() {
		t.Fatalf("electric read %v not ≥5× magnetic %v", ce.Now(), cm.Now())
	}
}

func TestChargeZeroBitsFree(t *testing.T) {
	var c sim.Clock
	a := NewArray(DefaultTiming(), DefaultGeometry(), 100, &c)
	a.ChargeMagneticRead(0, 0)
	if c.Now() != 0 {
		t.Fatal("zero-bit charge advanced clock")
	}
}

func TestNewArrayPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewArray(DefaultTiming(), DefaultGeometry(), 0, &sim.Clock{}) },
		func() {
			NewArray(DefaultTiming(), Geometry{ProbeRows: 1, ProbeCols: 1, FieldMicrons: 0.00001}, 100, &sim.Clock{})
		},
		func() { NewActuator(DefaultTiming(), Geometry{}, &sim.Clock{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestThroughputOrderOfMagnitude(t *testing.T) {
	// Sanity: a 32×32 array at 10 µs/bit sustains ~12.8 MB/s streaming
	// (1024 bits / 10 µs = 102.4 Mbit/s) ignoring seeks. Sequential
	// access with short serpentine steps should stay within 2× of
	// that.
	var c sim.Clock
	g := DefaultGeometry()
	a := NewArray(DefaultTiming(), g, 100, &c)
	const dots = 1 << 20
	a.ChargeMagneticRead(0, dots)
	bits := float64(dots)
	seconds := c.Now().Seconds()
	mbps := bits / 8 / 1e6 / seconds
	if mbps < 6 || mbps > 13 {
		t.Fatalf("streaming throughput %.1f MB/s, want 6–13", mbps)
	}
}

func TestTimingDurationsPositive(t *testing.T) {
	tm := DefaultTiming()
	for _, d := range []time.Duration{tm.MRB(), tm.MWB(), tm.ERB(), tm.EWB()} {
		if d <= 0 {
			t.Fatal("non-positive op latency")
		}
	}
}
