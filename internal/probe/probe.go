// Package probe models the µSPAM probe-storage device of §6: a MEMS
// sled carrying the patterned medium under a large array of MFM
// probes, with an electrostatic stepper actuator (µWalker/Harmonica
// style) providing X-Y motion.
//
// The package owns the latency model. The systems results in the paper
// depend on relative costs — erb is "at least 5 times slower than mrb",
// ewb is slower than mwb "because of the local heating process" — and
// the timing model preserves exactly those ratios while deriving
// absolute values from published probe-storage numbers [39].
package probe

import (
	"fmt"
	"math"
	"time"

	"sero/internal/sim"
)

// Timing holds the per-operation latency parameters of the device.
type Timing struct {
	// BitCell is the time for one magnetic bit operation (read or
	// write) on one probe. Probe-storage channels run at tens to
	// hundreds of kbit/s per tip [39]; 10 µs/bit = 100 kbit/s.
	BitCell time.Duration

	// HeatDwell is the extra dwell required for one electrical write
	// (current pulse raising the dot above the interface-mixing
	// temperature). Dominates ewb.
	HeatDwell time.Duration

	// SeekPerMicron is the sled travel time per micron of the longer
	// axis of the move (the two axes move concurrently).
	SeekPerMicron time.Duration

	// Settle is the post-seek settling time of the sled. Moves no
	// longer than StreamThresholdMicrons skip it: during sequential
	// scanning the sled glides at constant velocity and never stops to
	// settle.
	Settle time.Duration

	// StreamThresholdMicrons is the longest move still considered part
	// of a continuous scan (no settle).
	StreamThresholdMicrons float64
}

// DefaultTiming returns the timing model used throughout the
// experiments: 10 µs magnetic bit cells, 100 µs heat dwell (so
// ewb = 11 bit-times), 20 µs/µm seeks and 200 µs settle.
func DefaultTiming() Timing {
	return Timing{
		BitCell:                10 * time.Microsecond,
		HeatDwell:              100 * time.Microsecond,
		SeekPerMicron:          20 * time.Microsecond,
		Settle:                 200 * time.Microsecond,
		StreamThresholdMicrons: 0.5,
	}
}

// MRB returns the latency of one magnetic bit read.
func (t Timing) MRB() time.Duration { return t.BitCell }

// MWB returns the latency of one magnetic bit write.
func (t Timing) MWB() time.Duration { return t.BitCell }

// EWB returns the latency of one electrical bit write: a bit cell plus
// the heat dwell.
func (t Timing) EWB() time.Duration { return t.BitCell + t.HeatDwell }

// ERB returns the latency of one electrical bit read: the 5-step
// protocol of §3 costs 3 reads and 2 writes, hence exactly 5 bit cells
// — the paper's "at least 5 times slower than mrb".
func (t Timing) ERB() time.Duration { return 5 * t.BitCell }

// Geometry describes the probe array and the sled travel range.
type Geometry struct {
	// ProbeRows, ProbeCols give the probe-array dimensions. Each probe
	// services its own rectangular field of dots, so an array of
	// R×C probes reads/writes R×C bits concurrently.
	ProbeRows, ProbeCols int

	// FieldMicrons is the side of the square dot field under one probe
	// (also the maximum sled excursion per axis).
	FieldMicrons float64
}

// DefaultGeometry returns a 32×32 probe array with 100 µm fields,
// matching the µSPAM sketch in Fig 4 (1 cm die, mm-scale sled).
func DefaultGeometry() Geometry {
	return Geometry{ProbeRows: 32, ProbeCols: 32, FieldMicrons: 100}
}

// Probes returns the number of probes (the per-bit parallelism).
func (g Geometry) Probes() int { return g.ProbeRows * g.ProbeCols }

// Position is a sled position in microns.
type Position struct{ X, Y float64 }

// Actuator models the electrostatic stepper moving the media sled.
type Actuator struct {
	timing Timing
	geo    Geometry
	clock  *sim.Clock
	pos    Position

	seeks     uint64
	seekTime  time.Duration
	travelSum float64
}

// NewActuator returns an actuator at the origin.
func NewActuator(t Timing, g Geometry, c *sim.Clock) *Actuator {
	if g.Probes() <= 0 {
		panic(fmt.Sprintf("probe: invalid geometry %+v", g))
	}
	return &Actuator{timing: t, geo: g, clock: c}
}

// Position returns the current sled position.
func (a *Actuator) Position() Position { return a.pos }

// SeekTo moves the sled to p, advancing the clock by the travel time of
// the longer axis plus settle. Seeking to the current position is free:
// the device exploits this for sequential access.
func (a *Actuator) SeekTo(p Position) {
	if p.X < 0 || p.Y < 0 || p.X > a.geo.FieldMicrons || p.Y > a.geo.FieldMicrons {
		panic(fmt.Sprintf("probe: seek to %+v outside %g µm field", p, a.geo.FieldMicrons))
	}
	dx := math.Abs(p.X - a.pos.X)
	dy := math.Abs(p.Y - a.pos.Y)
	d := math.Max(dx, dy)
	if d == 0 {
		return
	}
	cost := time.Duration(d * float64(a.timing.SeekPerMicron))
	if d > a.timing.StreamThresholdMicrons {
		cost += a.timing.Settle
	}
	a.clock.Advance(cost)
	a.pos = p
	a.seeks++
	a.seekTime += cost
	a.travelSum += d
}

// SeekStats reports cumulative seek count, time and travel.
func (a *Actuator) SeekStats() (seeks uint64, total time.Duration, microns float64) {
	return a.seeks, a.seekTime, a.travelSum
}

// Array couples the actuator with the medium geometry: it maps linear
// dot indices to (sled position, probe) pairs and charges seek plus
// transfer latency for batched bit operations.
//
// Dot layout: dots are striped across probes so that consecutive bits
// of a sector land under distinct probes at the same sled position —
// one sled position serves Probes() bits in parallel, which is how
// probe storage achieves hard-disk-class data rates from slow tips.
type Array struct {
	act      *Actuator
	timing   Timing
	geo      Geometry
	clock    *sim.Clock
	pitchNM  float64
	dotsSide int // dots per field side
}

// NewArray builds the probe array model. pitchNM is the medium dot
// pitch; it determines how many sled positions a field offers.
func NewArray(t Timing, g Geometry, pitchNM float64, c *sim.Clock) *Array {
	if pitchNM <= 0 {
		panic("probe: non-positive pitch")
	}
	side := int(g.FieldMicrons * 1000 / pitchNM)
	if side <= 0 {
		panic("probe: field smaller than one dot")
	}
	return &Array{
		act:      NewActuator(t, g, c),
		timing:   t,
		geo:      g,
		clock:    c,
		pitchNM:  pitchNM,
		dotsSide: side,
	}
}

// Clock returns the array's virtual clock.
func (a *Array) Clock() *sim.Clock { return a.clock }

// Timing returns the latency model.
func (a *Array) Timing() Timing { return a.timing }

// Geometry returns the probe-array geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Capacity returns the number of dots addressable by the array.
func (a *Array) Capacity() int {
	return a.geo.Probes() * a.dotsSide * a.dotsSide
}

// PositionOf maps a linear dot index to its sled position. Consecutive
// indices stripe across probes first, then advance the sled along a
// serpentine raster so sequential access rarely seeks.
func (a *Array) PositionOf(dotIndex int) Position {
	if dotIndex < 0 || dotIndex >= a.Capacity() {
		panic(fmt.Sprintf("probe: dot index %d outside capacity %d", dotIndex, a.Capacity()))
	}
	cell := dotIndex / a.geo.Probes() // which sled position
	row := cell / a.dotsSide
	col := cell % a.dotsSide
	if row%2 == 1 { // serpentine
		col = a.dotsSide - 1 - col
	}
	step := a.pitchNM / 1000 // µm per dot
	return Position{X: float64(col) * step, Y: float64(row) * step}
}

// Batch represents one hardware transfer: a set of dots grouped by sled
// position. Seek is charged once per distinct position; transfer is
// charged per ceil(bitsAtPosition / probes) bit-cell rounds.
type opKind int

const (
	opMRB opKind = iota
	opMWB
	opERB
	opEWB
)

func (a *Array) opLatency(k opKind) time.Duration {
	switch k {
	case opMRB:
		return a.timing.MRB()
	case opMWB:
		return a.timing.MWB()
	case opERB:
		return a.timing.ERB()
	case opEWB:
		return a.timing.EWB()
	default:
		panic("probe: unknown op kind")
	}
}

// ChargeBits charges seek and transfer latency for an operation of kind
// k over the dot index range [first, first+count). The range is walked
// in order; each sled-position change costs a seek, and each position
// transfers up to Probes() bits in parallel per bit-cell round.
func (a *Array) chargeBits(k opKind, first, count int) {
	if count <= 0 {
		return
	}
	per := a.opLatency(k)
	probes := a.geo.Probes()
	// Indices wrap modulo the array capacity: media larger than one
	// probe field are tiled across repeated sled sweeps, and latency
	// accounting only needs the positional pattern, not a unique
	// address per dot.
	i := first
	for i < first+count {
		pos := a.PositionOf(i % a.Capacity())
		a.act.SeekTo(pos)
		// All dots of this sled cell share the position; they move in
		// one parallel round.
		cellStart := (i / probes) * probes
		cellEnd := cellStart + probes
		n := first + count
		if cellEnd < n {
			n = cellEnd
		}
		a.clock.Advance(per) // one parallel round
		i = n
	}
}

// ChargeWriteSetup charges the servo settle that precedes one write
// command. Reads track on the fly — the detection channel tolerates
// residual sled motion — but committing magnetisation (and a fortiori
// an irreversible heat pulse) needs the sled locked and settled over
// the target dots, so every write *command* pays one Settle before its
// first bit; the bits within the command then stream. This is what
// makes batched multi-sector writes pay off: one command covering a
// contiguous run settles once, where the same run written
// sector-at-a-time settles once per sector.
func (a *Array) ChargeWriteSetup() { a.clock.Advance(a.timing.Settle) }

// ChargeMagneticRead charges the latency of magnetically reading count
// dots starting at first.
func (a *Array) ChargeMagneticRead(first, count int) { a.chargeBits(opMRB, first, count) }

// ChargeMagneticWrite charges the latency of magnetically writing count
// dots starting at first.
func (a *Array) ChargeMagneticWrite(first, count int) { a.chargeBits(opMWB, first, count) }

// ChargeElectricRead charges the latency of the erb protocol over count
// dots starting at first.
func (a *Array) ChargeElectricRead(first, count int) { a.chargeBits(opERB, first, count) }

// ChargeElectricWrite charges the latency of electrically writing
// (heating) count dots starting at first.
func (a *Array) ChargeElectricWrite(first, count int) { a.chargeBits(opEWB, first, count) }

// SeekStats exposes the actuator's cumulative seek statistics.
func (a *Array) SeekStats() (seeks uint64, total time.Duration, microns float64) {
	return a.act.SeekStats()
}
