# CI entry points. `make ci` is what a pipeline should run; the
# individual targets exist for local iteration.

GO ?= go

.PHONY: all build vet test race bench bench-serve bench-serve-quick benchcheck trace-smoke attack-campaign attack-soak degraded-campaign fuzz docs ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency suite (device stripes, parallel audit/scan, the core
# stress test, the background cleaner) must stay clean under the race
# detector.
race:
	$(GO) test -race ./...

# Audit fan-out family, the write-path batching/cleaner fan-out
# family, the sync/replay durability family, the append-during-clean
# lock-scoping family, plus the paper's figure/experiment benchmarks.
bench:
	$(GO) test -run '^$$' -bench BenchmarkAudit -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkFSAppend|BenchmarkClean|BenchmarkSync|BenchmarkMountReplay|BenchmarkAppendDuringClean' -benchtime 1x ./internal/lfs
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...

# The serving-tier macro-benchmark: replays the zipfian read-mostly mix
# from 1, 4 and 16 concurrent sessions over a 100k-file namespace and
# records the trajectory (per-op virtual-time latency percentiles,
# throughput, full reproduction config) to BENCH_serving.json. Takes
# minutes of wall clock — run it when the write/read path changes, then
# commit the refreshed JSON; `make ci` only re-checks the committed
# file's schema. The main record sweeps member-device widths 1 and 4
# (one parity member) at every session count, so the striped array's
# throughput trajectory is part of the committed record; compare widths
# with `benchcheck -diff`. The second run records the raw-device
# trajectory with the incremental auditor armed (and a frozen heat
# population for it to sweep) to BENCH_serving_audit.json, so the
# audit-on serving tax is part of the recorded record.
bench-serve:
	$(GO) run ./cmd/serocli bench-serve -devices 1,4 -parity 1 -out BENCH_serving.json
	$(GO) run ./cmd/serocli bench-serve -audit-every 64 -heat-files 64 -out BENCH_serving_audit.json

# A seconds-long smoke pass of the serving benchmark: a small
# namespace and op budget at 1 and 4 sessions, validated and then
# discarded. Run by `make ci` so the whole bench-serve pipeline — mix
# generation, session replay, amortized-sync accounting, report
# validation — is exercised on every change without the minutes-long
# full run.
bench-serve-quick:
	$(GO) run ./cmd/serocli bench-serve -files 2048 -ops 4096 -sessions 1,4 -out /tmp/sero-bench-quick.json
	$(GO) run ./tools/benchcheck /tmp/sero-bench-quick.json

# Schema gate over the committed trajectory files.
benchcheck:
	$(GO) run ./tools/benchcheck BENCH_serving.json BENCH_serving_audit.json

# Observability smoke: a small traced serving run exported as Chrome
# trace_event JSON, validated by tracecheck (Perfetto-loadable shape,
# at least one span), plus the in-terminal e20 rendition. Run by
# `make ci` so the span plumbing — ring buffer, session attribution,
# Chrome export — is exercised on every change.
trace-smoke:
	$(GO) run ./cmd/serocli trace -files 256 -ops 1024 -sessions 2 -out /tmp/sero-trace-smoke.json
	$(GO) run ./tools/tracecheck /tmp/sero-trace-smoke.json
	$(GO) run ./cmd/serosim e20-observability >/dev/null

# The concurrent attack campaign suite under the race detector: the §5
# tampering matrix raced against live workload sessions, the
# cooperative cleaner and incremental audit rounds, the
# detection-latency bound property test, the false-positive soak, and
# the audit-armed crash sweeps. Iteration counts scale down under the
# race build tag (the raceDetector const pattern), so this stays a
# minutes-not-hours gate in `make ci`.
attack-campaign:
	$(GO) test -race -run 'TestLiveCampaignDetectsEverything|TestDetectionLatencyBound|TestFalsePositiveSoak|TestCampaignCrashSurvival' ./internal/attack
	$(GO) test -race -run 'TestCrashMidAuditRoundCleanMount' ./internal/lfs

# The long soak variant: the same no-tampering live mix (traffic +
# background clean + audit rounds) with an 8x op budget, still
# asserting zero findings and byte-identical audit-on/audit-off
# virtual time. Not part of `make ci`; run it when the audit engine or
# the cleaner changes.
attack-soak:
	SERO_ATTACK_SOAK_OPS=16384 $(GO) test -run TestFalsePositiveSoak -count=1 -timeout 30m ./internal/attack

# The striped-array resilience suite under the race detector: crash
# consistency at every replay boundary with and without a member loss,
# cross-width mount-fingerprint equivalence, the auditor's
# repair-from-parity arm, the striped serving runs (width scaling,
# degraded reads, width-1 virtual-time identity), and the serofsck
# array modes end to end — parity-group scan with per-member findings,
# online self-healing over a 3/1 array, and online verification over a
# degraded 4/1 array.
degraded-campaign:
	$(GO) test -race -run 'TestCrashConsistencyStripedEveryBoundary|TestAuditorRepairsTamperFromParity|TestMountFingerprintEqualAcrossWidths' ./internal/lfs
	$(GO) test -race -run 'TestRunStriped|TestRunWidth1MatchesRawDevice' ./internal/serve
	$(GO) test -race -run 'TestRunArrayParityGroupScan|TestOnlineVerifyArray' ./cmd/serofsck

# Short fuzz passes over the image loader (the §5.2 trust boundary),
# the file-system op stream (checkpoint/acked-data durability), the
# roll-forward recovery path (random ops + random crash points; mount
# must never error on a torn summary tail), and the striped variant of
# the replay fuzzer (same grammar over 1/2/4-member arrays, plus a
# member loss after every crash when parity covers it).
fuzz:
	$(GO) test -run FuzzLoadImage -fuzz FuzzLoadImage -fuzztime 20s .
	$(GO) test -run FuzzFSOps -fuzz FuzzFSOps -fuzztime 20s ./internal/lfs
	$(GO) test -run 'FuzzReplay$$' -fuzz 'FuzzReplay$$' -fuzztime 20s ./internal/lfs
	$(GO) test -run FuzzReplayStriped -fuzz FuzzReplayStriped -fuzztime 20s ./internal/lfs

# Documentation gate: formatting, vet, and a mechanical check that
# every exported identifier in the public API (package sero), the
# file-system core (internal/lfs), the serving tier (internal/serve),
# the tracing plane (internal/trace), the store/audit core
# (internal/core) and the attack harness (internal/attack) carries a
# doc comment, so `go doc` reads as a complete reference.
docs:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./tools/doccheck . ./internal/lfs ./internal/serve ./internal/trace ./internal/core ./internal/attack

# docs already runs vet, so ci doesn't list it twice. race runs the
# full -race suite; attack-campaign and degraded-campaign narrow in on
# the concurrent campaign and array-resilience tests so a failure
# there is named in the CI log.
ci: build test race docs benchcheck bench-serve-quick trace-smoke attack-campaign degraded-campaign
