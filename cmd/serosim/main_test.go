package main

import "testing"

// The heavyweight experiments have their own tests in
// internal/experiments; here we exercise the dispatch and the cheap
// figures end to end.
func TestRunFigures(t *testing.T) {
	for _, name := range []string{"fig2", "fig3", "fig7", "fig8", "fig9", "e1-latency", "e10-pulse"} {
		if err := run(name, 42); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 42); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
