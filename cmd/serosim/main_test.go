package main

import "testing"

// The heavyweight experiments have their own tests in
// internal/experiments; here we exercise the dispatch and the cheap
// figures end to end.
func TestRunFigures(t *testing.T) {
	for _, name := range []string{"fig2", "fig3", "fig7", "fig8", "fig9", "e1-latency", "e10-pulse"} {
		if err := run(name, 42); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 42); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunServingDispatch(t *testing.T) {
	// e18-serving routes through fsFlags.sessions; keep the sweep tiny.
	old := fsFlags
	defer func() { fsFlags = old }()
	fsFlags.sessions = 1
	if err := run("e18-serving", 42); err != nil {
		t.Fatal(err)
	}
}
