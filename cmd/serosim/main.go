// Command serosim regenerates every figure and experiment of the paper
// "Towards Tamper-evident Storage on Patterned Media" (FAST 2008).
//
// Usage:
//
//	serosim [-seed N] [-j workers] [-writeback N] [-ckpt-every N] [-watermark N] [experiment ...]
//
// Flags (all validated, nonsensical values are rejected rather than
// silently clamped):
//
//	-seed N       deterministic seed for stochastic experiments (default 42)
//	-j N          worker fan-out for e14-writepath and e16-background-clean;
//	              must be positive, 1 = serial (default 4)
//	-writeback N  group-commit granularity for e14-writepath; must be 0
//	              (whole segments) or positive, 1 = block-at-a-time (default 0)
//	-ckpt-every N checkpoint interval in appended blocks, swept by
//	              e15-recovery; must be positive, 1 = checkpoint every
//	              sync (default 256)
//	-watermark N  free-segment threshold for e16-background-clean's
//	              policy demo; must be positive (default 8)
//	-sessions N   concurrent-session ceiling for e18-serving's sweep
//	              (1, 2, 4, … up to N); must be positive (default 4)
//
// With no arguments every experiment runs. Experiments:
//
//	fig2        bit state machine
//	fig3        heated-line medium layout
//	fig7        anisotropy vs annealing temperature
//	fig8        low-angle XRD (superlattice peak)
//	fig9        high-angle XRD (CoPt(111) peak)
//	e1-latency  sector operation latency contract
//	e2-gc       cleaner cost vs heated fraction (aware vs oblivious)
//	e3-bimodal  segment bimodality under the snapshot workload
//	e4-attacks  §5 attack detection matrix
//	e5-overhead hash overhead and heat cost vs line size
//	e6-archival Venti + fossilized index on SERO
//	e7-erb      electrical-read reliability vs noise and retries
//	e8-aging    device lifetime: WMRM→RO ageing with retention shredding
//	e9-defects  media defect tolerance of the ECC and heat-probe
//	e10-pulse   heat-pulse engineering: temperature/dwell vs destruction
//	e11-worm    §2 WORM technology comparison under the rewrite attack
//	e12-ffs     heat clustering across FS designs (LFS vs FFS-style)
//	e13-scrub   background-scrub tradeoff: detection latency vs overhead
//	e14-writepath batched write pipeline: group commit and cleaner fan-out
//	e15-recovery  roll-forward recovery: sync latency vs replay time
//	e16-background-clean  foreground append latency vs an in-flight
//	              cleaning pass: exclusive lock vs phased/overlapped,
//	              plus the CleanWatermark background-goroutine policy
//	e17-mount-scale  mount cost vs namespace width: the checkpointed
//	              liveness table (O(segments + replayed tail)) against
//	              the full inode walk (O(files)), serial and fanned
//	              over -j worker planes
//	e18-serving   serving tier: the zipfian read-mostly mix replayed
//	              from 1, 2, 4, … -sessions concurrent sessions over one
//	              FS, with per-op virtual-time latency percentiles and
//	              sustained throughput (the in-process rendition of
//	              `serocli bench-serve`)
//	e19-parallel-write  the parallel write path: mixed hot+cold appends
//	              over eight affinity classes, per-class runs flushed
//	              serially (j=1, the single-frontier baseline) vs
//	              fanned over worker planes up to -j — byte-identical
//	              layout, slowest-class virtual time
//	e20-observability  the tracing plane: one traced serving-mix run
//	              rendered as a per-span-kind text profile, the
//	              per-session latency decomposition (own device time
//	              vs lock wait vs queueing), and the counters
//	              snapshot (re-anchors, fall-backs, stale moves)
//	e21-online-verify  continuous verification: detection latency of a
//	              random live tamper vs the incremental auditor's
//	              2*ceil(L/batch) bound across batch sizes, and the
//	              audit tax on the serving mix (virtual-time identical
//	              audit-on vs audit-off, shadow device cost reported)
//	e22-striping  the striped multi-volume array: serving throughput
//	              across widths 1/2/4 with Reed–Solomon parity,
//	              width-1 virtual-time identity with the raw device,
//	              degraded serving with one member lost (reads
//	              reconstructed from the parity group), and auditor
//	              self-healing of a tampered heated line
//
// Example invocations:
//
//	serosim e14-writepath                  # defaults: j=4, whole-segment commits
//	serosim -j 8 -writeback 16 e14-writepath
//	serosim -ckpt-every 64 e15-recovery    # denser checkpoints, shorter replay
//	serosim -j 4 -watermark 8 e16-background-clean
//	serosim -j 4 e17-mount-scale           # fanned-walk column at 4 workers
//	serosim -sessions 8 e18-serving        # sweep sessions 1..8
package main

import (
	"flag"
	"fmt"
	"os"

	"sero/internal/experiments"
	"sero/internal/physics"
)

func main() {
	seed := flag.Uint64("seed", 42, "deterministic seed for stochastic experiments")
	workers := flag.Int("j", 4, "cleaner fan-out width for e14-writepath (1 = serial)")
	writeback := flag.Int("writeback", 0, "group-commit granularity for e14-writepath (1 = block-at-a-time, 0 = whole segments)")
	ckptEvery := flag.Int("ckpt-every", 256, "extra checkpoint interval (appended blocks) swept by e15-recovery")
	watermark := flag.Int("watermark", 8, "background-cleaner free-segment threshold for e16-background-clean")
	sessions := flag.Int("sessions", 4, "concurrent-session ceiling for e18-serving's sweep")
	flag.Parse()
	// Nonsensical values are rejected, not silently clamped: a typo'd
	// experiment configuration should fail loudly, not quietly measure
	// something else.
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "serosim: -j must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	if *writeback < 0 {
		fmt.Fprintf(os.Stderr, "serosim: -writeback must be 0 (whole segments) or positive (got %d)\n", *writeback)
		os.Exit(2)
	}
	if *ckptEvery <= 0 {
		fmt.Fprintf(os.Stderr, "serosim: -ckpt-every must be positive (got %d)\n", *ckptEvery)
		os.Exit(2)
	}
	if *watermark <= 0 {
		fmt.Fprintf(os.Stderr, "serosim: -watermark must be positive (got %d)\n", *watermark)
		os.Exit(2)
	}
	if *sessions <= 0 {
		fmt.Fprintf(os.Stderr, "serosim: -sessions must be positive (got %d)\n", *sessions)
		os.Exit(2)
	}
	fsFlags = fsFlagValues{workers: *workers, writeback: *writeback, ckptEvery: *ckptEvery, watermark: *watermark, sessions: *sessions}

	all := []string{
		"fig2", "fig3", "fig7", "fig8", "fig9",
		"e1-latency", "e2-gc", "e3-bimodal", "e4-attacks",
		"e5-overhead", "e6-archival", "e7-erb", "e8-aging", "e9-defects", "e10-pulse", "e11-worm", "e12-ffs", "e13-scrub",
		"e14-writepath", "e15-recovery", "e16-background-clean",
		"e17-mount-scale", "e18-serving", "e19-parallel-write",
		"e20-observability", "e21-online-verify", "e22-striping",
	}
	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = all
	}
	for _, name := range wanted {
		if err := run(name, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "serosim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func run(name string, seed uint64) error {
	switch name {
	case "fig2":
		fmt.Print(experiments.RunFig2().Table())
	case "fig3":
		res, err := experiments.RunFig3(3)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "fig7":
		fmt.Print(experiments.Fig7Table(physics.RunFig7(seed)))
	case "fig8":
		fmt.Print(experiments.Fig8Table(physics.RunFig8(seed)))
	case "fig9":
		fmt.Print(experiments.Fig9Table(physics.RunFig9(seed)))
	case "e1-latency":
		res, err := experiments.RunE1()
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e2-gc":
		res, err := experiments.RunE2(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e3-bimodal":
		res, err := experiments.RunE3(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e4-attacks":
		res, err := experiments.RunE4(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e5-overhead":
		res, err := experiments.RunE5()
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e6-archival":
		res, err := experiments.RunE6(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e7-erb":
		fmt.Print(experiments.RunE7(seed).Table())
	case "e8-aging":
		res, err := experiments.RunE8(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e9-defects":
		res, err := experiments.RunE9(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e10-pulse":
		res := experiments.RunE10()
		if msg := res.VerifyAgainstMedium(); msg != "" {
			return fmt.Errorf("cross-check failed: %s", msg)
		}
		fmt.Print(res.Table())
	case "e11-worm":
		res, err := experiments.RunE11()
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e12-ffs":
		res, err := experiments.RunE12(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e13-scrub":
		res, err := experiments.RunE13(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e14-writepath":
		res, err := experiments.RunE14(fsFlags.workers, fsFlags.writeback)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e15-recovery":
		res, err := experiments.RunE15(192, 96, fsFlags.ckptEvery)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e16-background-clean":
		res, err := experiments.RunE16(fsFlags.workers, fsFlags.watermark)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e17-mount-scale":
		res, err := experiments.RunE17(fsFlags.workers, 8)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e18-serving":
		res, err := experiments.RunE18(fsFlags.sessions, seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e19-parallel-write":
		res, err := experiments.RunE19(fsFlags.workers)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e20-observability":
		res, err := experiments.RunE20(fsFlags.sessions, seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e21-online-verify":
		res, err := experiments.RunE21(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	case "e22-striping":
		res, err := experiments.RunE22(fsFlags.sessions, seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// fsFlagValues carries the -j/-writeback/-ckpt-every/-watermark/-sessions
// settings into run without threading them through every experiment's
// arguments.
type fsFlagValues struct {
	workers   int
	writeback int
	ckptEvery int
	watermark int
	sessions  int
}

var fsFlags = fsFlagValues{workers: 4, ckptEvery: 256, watermark: 8, sessions: 4}
