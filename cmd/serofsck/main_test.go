package main

import (
	"strings"
	"testing"
)

func TestRunAllAttackModes(t *testing.T) {
	for _, mode := range []string{"none", "wipe", "erase"} {
		if err := run(256, mode, 4); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(256, "meteor", 1); err == nil {
		t.Fatal("unknown attack mode accepted")
	}
}

func TestFsckJournal(t *testing.T) {
	if err := fsckJournal(1024, 2, "none"); err != nil {
		t.Fatal(err)
	}
}

// TestFsckJournalFindings pins the check-finding paths: injected
// checkpoint damage must surface as a FINDING error (the non-zero
// exit), never be tolerated silently.
func TestFsckJournalFindings(t *testing.T) {
	err := fsckJournal(1024, 1, "torn-checkpoints")
	if err == nil || !strings.Contains(err.Error(), "FINDING") ||
		!strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn-checkpoints injection not reported as a finding: %v", err)
	}
	err = fsckJournal(1024, 1, "table")
	if err == nil || !strings.Contains(err.Error(), "FINDING") ||
		!strings.Contains(err.Error(), "REJECTED") {
		t.Fatalf("table injection not reported as a finding: %v", err)
	}
}
