package main

import "testing"

func TestRunAllAttackModes(t *testing.T) {
	for _, mode := range []string{"none", "wipe", "erase"} {
		if err := run(256, mode, 4); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(256, "meteor", 1); err == nil {
		t.Fatal("unknown attack mode accepted")
	}
}

func TestFsckJournal(t *testing.T) {
	if err := fsckJournal(1024, 2); err != nil {
		t.Fatal(err)
	}
}
