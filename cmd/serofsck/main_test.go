package main

import (
	"strings"
	"testing"
)

func TestRunAllAttackModes(t *testing.T) {
	for _, mode := range []string{"none", "wipe", "erase"} {
		if err := run(256, mode, 4, 1, 0); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(256, "meteor", 1, 1, 0); err == nil {
		t.Fatal("unknown attack mode accepted")
	}
}

// TestRunArrayParityGroupScan drives the offline scan over a striped
// array in every attack mode. The wipe mode's FINDING-ESCAPED check is
// live inside run: the forged heated line on parity territory must be
// surfaced as a per-member finding or run errors.
func TestRunArrayParityGroupScan(t *testing.T) {
	for _, mode := range []string{"none", "wipe", "erase"} {
		if err := run(256, mode, 2, 3, 1); err != nil {
			t.Fatalf("array mode %s: %v", mode, err)
		}
	}
}

func TestFsckJournal(t *testing.T) {
	if err := fsckJournal(1024, 2, "none", 1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestFsckJournalArray runs the same journal verification with the
// file system striped over three members — the journal lives in the
// global block space, so the check is geometry-blind.
func TestFsckJournalArray(t *testing.T) {
	if err := fsckJournal(512, 2, "none", 3, 1); err != nil {
		t.Fatal(err)
	}
}

// TestFsckJournalFindings pins the check-finding paths: injected
// checkpoint damage must surface as a FINDING error (the non-zero
// exit), never be tolerated silently.
func TestFsckJournalFindings(t *testing.T) {
	err := fsckJournal(1024, 1, "torn-checkpoints", 1, 0)
	if err == nil || !strings.Contains(err.Error(), "FINDING") ||
		!strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn-checkpoints injection not reported as a finding: %v", err)
	}
	err = fsckJournal(1024, 1, "table", 1, 0)
	if err == nil || !strings.Contains(err.Error(), "FINDING") ||
		!strings.Contains(err.Error(), "REJECTED") {
		t.Fatalf("table injection not reported as a finding: %v", err)
	}
}

func TestOnlineVerify(t *testing.T) {
	if err := onlineVerify(1024, 2, 1, 0, false); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineVerifyArrayHeals runs the live verification over a healthy
// 3/1 array: the detection assertions and the self-healing check (the
// tampered line must re-verify clean after the auditor's parity
// repair) are live inside onlineVerify.
func TestOnlineVerifyArrayHeals(t *testing.T) {
	if err := onlineVerify(1024, 2, 3, 1, false); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineVerifyArrayDegraded fails an evidence-free member first:
// the clean sweep and tamper detection must hold while the lost
// member's blocks reconstruct from the parity group.
func TestOnlineVerifyArrayDegraded(t *testing.T) {
	if err := onlineVerify(1024, 2, 4, 1, true); err != nil {
		t.Fatal(err)
	}
}
