// Command serofsck demonstrates the §5.2 recovery path: it builds a
// device with heated evidence, simulates host-state loss and attacker
// interference (directory wipe, bulk erase), then scans the medium to
// recover every heated line and reports their verification status —
// "a fsck style scan of the medium would definitely recover (albeit
// slowly) all the heated files". It then checks the file-system side
// of recovery: the roll-forward summary chain is verified end to end
// (sequence continuity, chained checksums, back-pointer agreement with
// the imap) and the checkpoint age and replayable-tail length are
// reported.
//
// Usage:
//
//	serofsck [-blocks N] [-attack none|wipe|erase] [-j workers]
//
// Flags (all validated, nonsensical values are rejected rather than
// silently clamped):
//
//	-blocks N  device size in 512-byte blocks (default 1024)
//	-attack M  attacker action before the scan: none, wipe (directory
//	           wipe) or erase (bulk erase); anything else is rejected
//	           (default wipe)
//	-j N       scan/audit worker fan-out; must be positive, 1 = serial
//	           (default 1)
//
// Example invocations:
//
//	serofsck                      # wipe attack, serial scan
//	serofsck -attack erase -j 4   # bulk erase, fanned-out recovery scan
package main

import (
	"flag"
	"fmt"
	"os"

	"sero"
)

func main() {
	blocks := flag.Int("blocks", 1024, "device size in 512-byte blocks")
	attackMode := flag.String("attack", "wipe", "attacker action before the scan: none, wipe, erase")
	workers := flag.Int("j", 1, "scan/audit concurrency (worker count; 1 = serial)")
	flag.Parse()
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "serofsck: -j must be positive (got %d)\n", *workers)
		os.Exit(2)
	}

	if err := run(*blocks, *attackMode, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "serofsck:", err)
		os.Exit(1)
	}
	if err := fsckJournal(*blocks, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "serofsck:", err)
		os.Exit(1)
	}
}

// fsckJournal builds a file system whose syncs ride the summary tail,
// then verifies the chain the way a recovery fsck would: mount from
// the last checkpoint, roll forward, and cross-check the journaled
// back-pointers against the replayed imap.
func fsckJournal(blocks, workers int) error {
	fmt.Println("\n== file-system journal check ==")
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})
	opts := sero.FSOptions{
		SegmentBlocks:   32,
		CheckpointEvery: 1 << 20, // everything after the first sync journals
		HeatAware:       true,
		Concurrency:     workers,
	}
	fs, err := sero.NewFS(dev, opts)
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("log%02d", i)
		ino, err := fs.Create(name, 0)
		if err != nil {
			return err
		}
		data := make([]byte, 2*sero.BlockSize)
		copy(data, fmt.Sprintf("audit log %d", i))
		if err := fs.Write(ino, 0, data); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
	}
	if err := fs.Rename("log00", "log00.archived"); err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	rep, err := sero.CheckFSJournal(dev, opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if !rep.Healthy() {
		return fmt.Errorf("summary chain failed verification: %+v", rep)
	}
	fmt.Println("summary chain verified: every acked sync is replayable")
	return nil
}

func run(blocks int, attackMode string, workers int) error {
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})

	// Populate: three heated lines of compliance records.
	for i := 0; i < 3; i++ {
		var lineBlocks [][]byte
		for b := 0; b < 3; b++ {
			blk := make([]byte, sero.BlockSize)
			copy(blk, fmt.Sprintf("compliance record %d.%d", i, b))
			lineBlocks = append(lineBlocks, blk)
		}
		start, logN, err := dev.WriteLine(lineBlocks)
		if err != nil {
			return err
		}
		if _, err := dev.Heat(start, logN); err != nil {
			return err
		}
	}
	fmt.Printf("prepared %d heated lines\n", len(dev.Lines()))

	switch attackMode {
	case "none":
	case "wipe":
		fmt.Println("attacker wipes all host metadata (device registry lost)")
		// Recover() below rebuilds from the medium alone, which is the
		// point of the demonstration.
	case "erase":
		fmt.Println("attacker runs a bulk eraser over the medium")
		dev.Store().Device().Medium().BulkErase()
	default:
		return fmt.Errorf("unknown attack %q", attackMode)
	}

	rep, err := dev.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("scan recovered %d heated lines (%d unparseable, %d conflicts)\n",
		len(rep.Lines), len(rep.Unparseable), len(rep.Conflicts))
	for _, li := range rep.Lines {
		vr, err := dev.Verify(li.Start)
		if err != nil {
			return err
		}
		status := "intact"
		if vr.Tampered() {
			status = "TAMPERED (evidence preserved)"
		}
		fmt.Printf("  line %4d (+%2d blocks, heated at t=%dns): %s\n",
			li.Start, li.Blocks(), li.Record.HeatedAt, status)
	}
	fmt.Println(dev.Audit().Summary())
	return nil
}
