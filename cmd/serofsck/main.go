// Command serofsck demonstrates the §5.2 recovery path: it builds a
// device with heated evidence, simulates host-state loss and attacker
// interference (directory wipe, bulk erase), then scans the medium to
// recover every heated line and reports their verification status —
// "a fsck style scan of the medium would definitely recover (albeit
// slowly) all the heated files". It then checks the file-system side
// of recovery: the roll-forward summary chain is verified end to end
// (sequence continuity, chained checksums, back-pointer agreement with
// the imap), the checkpointed liveness table is cross-checked against
// the blocks the inodes actually own, and the checkpoint age and
// replayable-tail length are reported. Damage is a finding, not a
// tolerated condition: a double-torn checkpoint region (both slots
// damaged — a medium that must not be mounted as empty), a rejected
// liveness table, or table/imap disagreements all exit non-zero.
//
// With -online it instead verifies a mounted, LIVE file system: the
// incremental auditor (FS.AuditStep) sweeps the heated population in
// rounds while foreground traffic keeps writing — first proving a
// clean system yields zero findings, then forging a frame into a
// heated line mid-traffic and reporting the detection latency against
// the documented 2*ceil(L/batch) step bound. A finding on the clean
// pass, or a tamper that escapes the bound, exits non-zero.
//
// Usage:
//
//	serofsck [-blocks N] [-attack none|wipe|erase] [-j workers] [-inject none|torn-checkpoints|table]
//	serofsck -online [-blocks N] [-j workers]
//
// Flags (all validated, nonsensical values are rejected rather than
// silently clamped):
//
//	-blocks N  device size in 512-byte blocks (default 1024)
//	-attack M  attacker action before the scan: none, wipe (directory
//	           wipe) or erase (bulk erase); anything else is rejected
//	           (default wipe)
//	-j N       scan/audit worker fan-out; must be positive, 1 = serial
//	           (default 1)
//	-inject M  file-system damage to inject before the journal check,
//	           demonstrating the detection paths: none, torn-checkpoints
//	           (tear both checkpoint slots; the check must refuse the
//	           medium) or table (corrupt the liveness-table bytes; the
//	           check must reject the table). Either injection makes
//	           serofsck exit non-zero — that is the point (default none)
//
// Example invocations:
//
//	serofsck                        # wipe attack, serial scan
//	serofsck -attack erase -j 4     # bulk erase, fanned-out recovery scan
//	serofsck -inject torn-checkpoints  # exercise the double-torn finding
//	serofsck -online                # live verification of a mounted FS
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"

	"sero"
	"sero/internal/device"
	"sero/internal/medium"
)

func main() {
	blocks := flag.Int("blocks", 1024, "device size in 512-byte blocks")
	attackMode := flag.String("attack", "wipe", "attacker action before the scan: none, wipe, erase")
	workers := flag.Int("j", 1, "scan/audit concurrency (worker count; 1 = serial)")
	inject := flag.String("inject", "none", "file-system damage to inject: none, torn-checkpoints, table")
	online := flag.Bool("online", false, "verify a mounted, live file system with the incremental auditor instead of the offline scan")
	flag.Parse()
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "serofsck: -j must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	switch *inject {
	case "none", "torn-checkpoints", "table":
	default:
		fmt.Fprintf(os.Stderr, "serofsck: unknown -inject %q (want none, torn-checkpoints or table)\n", *inject)
		os.Exit(2)
	}

	if *online {
		if err := onlineVerify(*blocks, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "serofsck:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*blocks, *attackMode, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "serofsck:", err)
		os.Exit(1)
	}
	if err := fsckJournal(*blocks, *workers, *inject); err != nil {
		fmt.Fprintln(os.Stderr, "serofsck:", err)
		os.Exit(1)
	}
}

// onlineVerify mounts a live file system, keeps foreground traffic
// running, and verifies the heated population with the incremental
// auditor: a clean two-round sweep first (zero findings expected),
// then a forged frame injected into a heated line mid-traffic, timing
// its detection against the 2*ceil(L/batch) bound.
func onlineVerify(blocks, workers int) error {
	const auditBatch = 2
	fmt.Println("== online verification of a mounted, live file system ==")
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})
	fs, err := sero.NewFS(dev, sero.FSOptions{
		SegmentBlocks: 32,
		HeatAware:     true,
		Concurrency:   workers,
		AuditEvery:    16, // background rounds track write bandwidth
	})
	if err != nil {
		return err
	}
	defer fs.Close()

	// Population: three heated compliance files plus cold churn files.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("evidence%02d", i)
		ino, err := fs.Create(name, 0)
		if err != nil {
			return err
		}
		data := make([]byte, 2*sero.BlockSize)
		copy(data, fmt.Sprintf("compliance record %d", i))
		if err := fs.Write(ino, 0, data); err != nil {
			return err
		}
		if _, err := fs.HeatFile(name); err != nil {
			return err
		}
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	raw := fs.Device()
	lines := raw.Lines()
	fmt.Printf("mounted: %d heated lines under live traffic\n", len(lines))

	// The live foreground: a writer keeps appending to cold files for
	// the whole verification.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%02d", i%8)
			ino, err := fs.Lookup(name)
			if err != nil {
				ino, err = fs.Create(name, 1)
			}
			if err == nil {
				blk := make([]byte, sero.BlockSize)
				copy(blk, fmt.Sprintf("live write %d", i))
				err = fs.Write(ino, 0, blk)
			}
			if err == nil && i%16 == 15 {
				err = fs.Sync()
			}
			if err != nil {
				writerErr = err
				return
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	// Clean pass: two full rounds over the live system.
	bound := 2 * ((len(lines) + auditBatch - 1) / auditBatch)
	rounds := 0
	for s := 0; s < 2*bound && rounds < 2; s++ {
		rep, more := fs.AuditStep(auditBatch)
		if rep.RoundComplete {
			rounds++
		}
		if !more {
			break
		}
	}
	if writerErr != nil {
		return fmt.Errorf("live writer failed: %w", writerErr)
	}
	if n := len(fs.AuditFindings()); n != 0 {
		return fmt.Errorf("FINDING: %d tampered lines on a clean system", n)
	}
	fmt.Printf("clean sweep: %d rounds completed under live traffic, zero findings\n", rounds)

	// Tamper mid-traffic: forge a valid-looking frame into a member
	// block of the first heated line, then time its detection.
	victim := lines[0]
	member := victim.Start + 1
	forged := make([]byte, device.DataBytes)
	for i := range forged {
		forged[i] = byte(i * 7)
	}
	bits := device.ForgedFrameBits(member, forged)
	base := int(member) * device.DotsPerBlock
	raw.TamperRaw(victim.Start, member+2, func(m *medium.Medium) {
		for i, b := range bits {
			m.MWB(base+i, b)
		}
	})
	fmt.Printf("attacker forges block %d of heated line %d during live traffic\n", member, victim.Start)

	detected := func() bool {
		for _, f := range fs.AuditFindings() {
			if f.Line.Start == victim.Start {
				return true
			}
		}
		return false
	}
	steps := 0
	for ; steps < bound && !detected(); steps++ {
		fs.AuditStep(auditBatch)
	}
	if !detected() {
		return fmt.Errorf("FINDING ESCAPED: tamper of line %d not reported within the %d-step bound", victim.Start, bound)
	}
	st := fs.Stats()
	fmt.Printf("tamper detected after %d audit steps (bound %d); cumulative: %d steps, %d rounds, %d lines checked, %d findings\n",
		steps, bound, st.AuditSteps, st.AuditRounds, st.AuditLinesChecked, st.AuditFindings)
	fmt.Println("online verification complete: detection holds under live load")
	return nil
}

// fsckJournal builds a file system whose syncs ride the summary tail,
// optionally injects checkpoint-region damage, then verifies the chain
// the way a recovery fsck would: mount from the last checkpoint, roll
// forward, cross-check the journaled back-pointers against the
// replayed imap and the liveness table against the inodes. Any
// damage — including the double-torn condition, where no checkpoint
// slot survives — is a finding returned as an error (non-zero exit),
// never silently tolerated.
func fsckJournal(blocks, workers int, inject string) error {
	fmt.Println("\n== file-system journal check ==")
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})
	opts := sero.FSOptions{
		SegmentBlocks:   32,
		CheckpointEvery: 1 << 20, // everything after the first sync journals
		HeatAware:       true,
		Concurrency:     workers,
	}
	fs, err := sero.NewFS(dev, opts)
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("log%02d", i)
		ino, err := fs.Create(name, 0)
		if err != nil {
			return err
		}
		data := make([]byte, 2*sero.BlockSize)
		copy(data, fmt.Sprintf("audit log %d", i))
		if err := fs.Write(ino, 0, data); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
	}
	if err := fs.Rename("log00", "log00.archived"); err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	if err := injectDamage(dev, fs, inject); err != nil {
		return err
	}
	rep, err := sero.CheckFSJournal(dev, opts)
	if errors.Is(err, sero.ErrTornCheckpoint) {
		return fmt.Errorf("FINDING: both checkpoint slots are torn or corrupt — "+
			"the medium has been formatted but no consistent state survives; "+
			"refusing to treat it as an empty file system (%w)", err)
	}
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if !rep.Healthy() {
		return fmt.Errorf("FINDING: summary chain failed verification: "+
			"%d imap mismatches, %d back-pointer mismatches, liveness table %s (%d disagreements)",
			rep.ImapMismatches, rep.BackPtrMismatches, tableState(rep), rep.TableMismatches)
	}
	fmt.Println("summary chain verified: every acked sync is replayable, liveness table agrees")
	return nil
}

// tableState renders the liveness-table half of a report for the
// findings line.
func tableState(rep sero.FSJournalReport) string {
	switch {
	case !rep.TablePresent:
		return "absent"
	case !rep.TableValid:
		return fmt.Sprintf("REJECTED (%s)", rep.TableStop)
	default:
		return "valid"
	}
}

// injectDamage applies the requested -inject fault to the checkpoint
// region through the raw device interface — the same writes an
// attacker or a failing controller could issue.
func injectDamage(dev *sero.Device, fs *sero.FS, inject string) error {
	if inject == "none" {
		return nil
	}
	slot := fs.Params().CheckpointBlocks / 2
	switch inject {
	case "torn-checkpoints":
		fmt.Println("injecting: tearing both checkpoint slots")
		garbage := make([]byte, sero.BlockSize)
		for i := range garbage {
			garbage[i] = 0xEE
		}
		for _, base := range []uint64{0, uint64(slot)} {
			if err := dev.Write(base, garbage); err != nil {
				return err
			}
		}
	case "table":
		fmt.Println("injecting: corrupting the checkpointed liveness table")
		// Each slot frames [len][core][sum][table-len][table][table-sum];
		// flip the first byte of the table payload in every written
		// slot, leaving the core frame — and so the checkpoint — intact.
		corrupted := false
		for _, base := range []uint64{0, uint64(slot)} {
			img, _ := sero.ReadCheckpointPrefix(dev, base, slot)
			if len(img) == 0 {
				continue
			}
			total := binary.BigEndian.Uint64(img[:8])
			if total == 0 || total+24 >= uint64(len(img)) {
				continue
			}
			tlen := binary.BigEndian.Uint64(img[total+16 : total+24])
			if tlen == 0 {
				continue
			}
			off := total + 24 // first byte of the table payload
			blk := off / uint64(sero.BlockSize)
			data := img[blk*uint64(sero.BlockSize) : (blk+1)*uint64(sero.BlockSize)]
			data[off%uint64(sero.BlockSize)] ^= 0xFF
			if err := dev.Write(base+blk, data); err != nil {
				return err
			}
			corrupted = true
		}
		if !corrupted {
			return fmt.Errorf("inject table: no liveness table found to corrupt")
		}
	}
	return nil
}

func run(blocks int, attackMode string, workers int) error {
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})

	// Populate: three heated lines of compliance records.
	for i := 0; i < 3; i++ {
		var lineBlocks [][]byte
		for b := 0; b < 3; b++ {
			blk := make([]byte, sero.BlockSize)
			copy(blk, fmt.Sprintf("compliance record %d.%d", i, b))
			lineBlocks = append(lineBlocks, blk)
		}
		start, logN, err := dev.WriteLine(lineBlocks)
		if err != nil {
			return err
		}
		if _, err := dev.Heat(start, logN); err != nil {
			return err
		}
	}
	fmt.Printf("prepared %d heated lines\n", len(dev.Lines()))

	switch attackMode {
	case "none":
	case "wipe":
		fmt.Println("attacker wipes all host metadata (device registry lost)")
		// Recover() below rebuilds from the medium alone, which is the
		// point of the demonstration.
	case "erase":
		fmt.Println("attacker runs a bulk eraser over the medium")
		dev.Store().Device().Medium().BulkErase()
	default:
		return fmt.Errorf("unknown attack %q", attackMode)
	}

	rep, err := dev.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("scan recovered %d heated lines (%d unparseable, %d conflicts)\n",
		len(rep.Lines), len(rep.Unparseable), len(rep.Conflicts))
	for _, li := range rep.Lines {
		vr, err := dev.Verify(li.Start)
		if err != nil {
			return err
		}
		status := "intact"
		if vr.Tampered() {
			status = "TAMPERED (evidence preserved)"
		}
		fmt.Printf("  line %4d (+%2d blocks, heated at t=%dns): %s\n",
			li.Start, li.Blocks(), li.Record.HeatedAt, status)
	}
	fmt.Println(dev.Audit().Summary())
	return nil
}
