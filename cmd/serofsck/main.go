// Command serofsck demonstrates the §5.2 recovery path: it builds a
// device with heated evidence, simulates host-state loss and attacker
// interference (directory wipe, bulk erase), then scans the medium to
// recover every heated line and reports their verification status —
// "a fsck style scan of the medium would definitely recover (albeit
// slowly) all the heated files". It then checks the file-system side
// of recovery: the roll-forward summary chain is verified end to end
// (sequence continuity, chained checksums, back-pointer agreement with
// the imap), the checkpointed liveness table is cross-checked against
// the blocks the inodes actually own, and the checkpoint age and
// replayable-tail length are reported. Damage is a finding, not a
// tolerated condition: a double-torn checkpoint region (both slots
// damaged — a medium that must not be mounted as empty), a rejected
// liveness table, or table/imap disagreements all exit non-zero.
//
// With -devices N (and -parity P) every check runs against a striped
// multi-volume array instead of a single sled: the recovery scan
// becomes a parity-group scan over every member's medium, and
// anomalies that have no global address — evidence an attacker planted
// on a member's parity territory, outside the logical block space —
// are surfaced as per-member findings rather than silently dropped.
// The wipe attack exercises exactly that: besides losing the host
// registry, the attacker forges a heated line onto one member's parity
// territory, and the scan must attribute it to that member.
//
// With -online it instead verifies a mounted, LIVE file system: the
// incremental auditor (FS.AuditStep) sweeps the heated population in
// rounds while foreground traffic keeps writing — first proving a
// clean system yields zero findings, then forging a frame into a
// heated line mid-traffic and reporting the detection latency against
// the documented 2*ceil(L/batch) step bound. A finding on the clean
// pass, or a tamper that escapes the bound, exits non-zero. Over an
// array with parity the auditor's repair arm is wired to
// array.RepairLine, so the tampered line must not only be detected but
// healed in place from the parity group and re-verified clean; with
// -degraded one evidence-free member is failed first, and verification
// must hold while its reads reconstruct from the survivors (repair of
// a further tamper is then honestly deferred — one member down
// consumes a parity budget of 1).
//
// Usage:
//
//	serofsck [-blocks N] [-attack none|wipe|erase] [-j workers] [-inject none|torn-checkpoints|table] [-devices N -parity P]
//	serofsck -online [-blocks N] [-j workers] [-devices N -parity P [-degraded]]
//
// Flags (all validated, nonsensical values are rejected rather than
// silently clamped):
//
//	-blocks N  device size in 512-byte blocks (default 1024); with
//	           -devices this is the capacity of EACH member and must be
//	           a multiple of the 32-block stripe unit
//	-attack M  attacker action before the scan: none, wipe (directory
//	           wipe; over an array also a forged line on parity
//	           territory) or erase (bulk erase of every member);
//	           anything else is rejected (default wipe)
//	-j N       scan/audit worker fan-out; must be positive, 1 = serial
//	           (default 1)
//	-inject M  file-system damage to inject before the journal check,
//	           demonstrating the detection paths: none, torn-checkpoints
//	           (tear both checkpoint slots; the check must refuse the
//	           medium) or table (corrupt the liveness-table bytes; the
//	           check must reject the table). Either injection makes
//	           serofsck exit non-zero — that is the point (default none)
//	-devices N striped-array member count; 1 = single device (default 1)
//	-parity N  Reed–Solomon parity members, in [0, devices) (default 0)
//	-degraded  with -online: fail one evidence-free member before
//	           verification; requires -parity >= 1
//
// Example invocations:
//
//	serofsck                        # wipe attack, serial scan
//	serofsck -attack erase -j 4     # bulk erase, fanned-out recovery scan
//	serofsck -inject torn-checkpoints  # exercise the double-torn finding
//	serofsck -devices 3 -parity 1      # parity-group scan with per-member findings
//	serofsck -online                # live verification of a mounted FS
//	serofsck -online -devices 3 -parity 1            # detection + self-healing from parity
//	serofsck -online -devices 4 -parity 1 -degraded  # verification over a degraded array
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"

	"sero"
	"sero/internal/array"
	"sero/internal/device"
	"sero/internal/medium"
)

// arrayStripe is the stripe unit every array-mode run uses — equal to
// the online FS segment size, so one segment maps to one member.
const arrayStripe = 32

func main() {
	blocks := flag.Int("blocks", 1024, "device size in 512-byte blocks (per member with -devices)")
	attackMode := flag.String("attack", "wipe", "attacker action before the scan: none, wipe, erase")
	workers := flag.Int("j", 1, "scan/audit concurrency (worker count; 1 = serial)")
	inject := flag.String("inject", "none", "file-system damage to inject: none, torn-checkpoints, table")
	online := flag.Bool("online", false, "verify a mounted, live file system with the incremental auditor instead of the offline scan")
	devices := flag.Int("devices", 1, "striped-array member count (1 = single device)")
	parity := flag.Int("parity", 0, "Reed–Solomon parity members of the array, in [0, devices)")
	degraded := flag.Bool("degraded", false, "with -online: fail one evidence-free member before verification (requires -parity >= 1)")
	flag.Parse()
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "serofsck: -j must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	switch *inject {
	case "none", "torn-checkpoints", "table":
	default:
		fmt.Fprintf(os.Stderr, "serofsck: unknown -inject %q (want none, torn-checkpoints or table)\n", *inject)
		os.Exit(2)
	}
	if *devices < 1 {
		fmt.Fprintf(os.Stderr, "serofsck: -devices must be at least 1 (got %d)\n", *devices)
		os.Exit(2)
	}
	if *parity < 0 || *parity >= *devices {
		fmt.Fprintf(os.Stderr, "serofsck: -parity must be in [0, devices) (got %d of %d devices)\n", *parity, *devices)
		os.Exit(2)
	}
	if *devices > 1 && *blocks%arrayStripe != 0 {
		fmt.Fprintf(os.Stderr, "serofsck: with -devices, -blocks must be a multiple of the %d-block stripe unit (got %d)\n", arrayStripe, *blocks)
		os.Exit(2)
	}
	if *degraded && !*online {
		fmt.Fprintln(os.Stderr, "serofsck: -degraded requires -online")
		os.Exit(2)
	}
	if *degraded && *parity < 1 {
		fmt.Fprintln(os.Stderr, "serofsck: -degraded requires -parity >= 1 (a member loss without parity is data loss, not a demonstration)")
		os.Exit(2)
	}

	if *online {
		if err := onlineVerify(*blocks, *workers, *devices, *parity, *degraded); err != nil {
			fmt.Fprintln(os.Stderr, "serofsck:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*blocks, *attackMode, *workers, *devices, *parity); err != nil {
		fmt.Fprintln(os.Stderr, "serofsck:", err)
		os.Exit(1)
	}
	if err := fsckJournal(*blocks, *workers, *inject, *devices, *parity); err != nil {
		fmt.Fprintln(os.Stderr, "serofsck:", err)
		os.Exit(1)
	}
}

// openStore builds the store under test: one simulated sled, or a
// striped array with rotated Reed–Solomon parity behind the identical
// facade when -devices asks for width.
func openStore(blocks, workers, devices, parity int) *sero.Device {
	if devices == 1 {
		return sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})
	}
	return sero.OpenArray(sero.ArrayOptions{
		Options:       sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers},
		Devices:       devices,
		ParityDevices: parity,
		StripeBlocks:  arrayStripe,
	})
}

// parityTerritory finds a member-local block range of span blocks,
// aligned to span, that carries parity (no global address) — the
// territory an attacker would abuse to plant evidence outside the
// logical block space.
func parityTerritory(arr *array.Array, span uint64) (member int, lpba uint64, err error) {
	data := make([]map[uint64]bool, arr.Members())
	for m := range data {
		data[m] = make(map[uint64]bool)
	}
	for g := 0; g < arr.Blocks(); g++ {
		m, l := arr.Locate(uint64(g))
		data[m][l] = true
	}
	memberBlocks := uint64(arr.MemberDevice(0).Blocks())
	for m := arr.Members() - 1; m >= 0; m-- {
		for start := uint64(0); start+span <= memberBlocks; start += span {
			clear := true
			for o := uint64(0); o < span; o++ {
				if data[m][start+o] {
					clear = false
					break
				}
			}
			if clear {
				return m, start, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("no parity territory of %d aligned blocks found", span)
}

// onlineVerify mounts a live file system, keeps foreground traffic
// running, and verifies the heated population with the incremental
// auditor: a clean two-round sweep first (zero findings expected),
// then a forged frame injected into a heated line mid-traffic, timing
// its detection against the 2*ceil(L/batch) bound. Over an array with
// spare parity the repair arm is wired: the tampered line must also be
// healed in place from the parity group; with -degraded an
// evidence-free member is failed first and verification must hold
// while its blocks reconstruct.
func onlineVerify(blocks, workers, devices, parity int, degraded bool) error {
	const auditBatch = 2
	fmt.Println("== online verification of a mounted, live file system ==")
	dev := openStore(blocks, workers, devices, parity)
	arr := dev.Array()
	fs, err := sero.NewFS(dev, sero.FSOptions{
		SegmentBlocks: 32,
		HeatAware:     true,
		Concurrency:   workers,
		AuditEvery:    16, // background rounds track write bandwidth
	})
	if err != nil {
		return err
	}
	defer fs.Close()

	// Population: three heated compliance files plus cold churn files.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("evidence%02d", i)
		ino, err := fs.Create(name, 0)
		if err != nil {
			return err
		}
		data := make([]byte, 2*sero.BlockSize)
		copy(data, fmt.Sprintf("compliance record %d", i))
		if err := fs.Write(ino, 0, data); err != nil {
			return err
		}
		if _, err := fs.HeatFile(name); err != nil {
			return err
		}
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	lines := fs.Device().Lines()
	if arr != nil {
		fmt.Printf("mounted: %d heated lines over a %d-member array (%d parity, stripe unit %d blocks)\n",
			len(lines), devices, parity, arrayStripe)
	} else {
		fmt.Printf("mounted: %d heated lines under live traffic\n", len(lines))
	}

	// Degraded mode: fail a member that carries no heated evidence, so
	// the auditor's population stays electrically verifiable while every
	// read touching the lost member reconstructs from the parity group.
	failM := -1
	if degraded {
		// Broad marker files first: eight segment-sized files cover
		// every parity-rotation slot, so whichever member fails below
		// demonstrably holds committed data — its read-back must then be
		// served via reconstruction, byte-for-byte intact.
		for f := 0; f < 8; f++ {
			ino, err := fs.Create(fmt.Sprintf("span%02d", f), 2)
			if err != nil {
				return err
			}
			span := make([]byte, 32*sero.BlockSize)
			for i := range span {
				span[i] = byte(i*13 + 7 + f)
			}
			if err := fs.Write(ino, 0, span); err != nil {
				return err
			}
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		held := make([]int, arr.Members())
		for _, li := range lines {
			m, _ := arr.Locate(li.Start)
			held[m]++
		}
		for m := arr.Members() - 1; m >= 0; m-- {
			if held[m] == 0 {
				failM = m
				break
			}
		}
		if failM < 0 {
			return fmt.Errorf("every member holds heated evidence; a wider array (-devices) is needed for the degraded demonstration")
		}
		if err := arr.FailMember(failM); err != nil {
			return err
		}
		fmt.Printf("member %d fails before verification: its reads reconstruct from the parity group, its writes land in the parity shadow\n", failM)
	}

	// The repair arm: with spare parity (beyond what a degraded member
	// consumes) the auditor heals what it finds.
	failedMembers := 0
	if degraded {
		failedMembers = 1
	}
	canHeal := arr != nil && parity > failedMembers
	if canHeal {
		fs.SetAuditRepairer(arr.RepairLine)
	}

	// The live foreground: a writer keeps appending to cold files for
	// the whole verification.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%02d", i%8)
			ino, err := fs.Lookup(name)
			if err != nil {
				ino, err = fs.Create(name, 1)
			}
			if err == nil {
				blk := make([]byte, sero.BlockSize)
				copy(blk, fmt.Sprintf("live write %d", i))
				err = fs.Write(ino, 0, blk)
			}
			if err == nil && i%16 == 15 {
				err = fs.Sync()
			}
			if err != nil {
				writerErr = err
				return
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	// Clean pass: two full rounds over the live system.
	bound := 2 * ((len(lines) + auditBatch - 1) / auditBatch)
	rounds := 0
	for s := 0; s < 2*bound && rounds < 2; s++ {
		rep, more := fs.AuditStep(auditBatch)
		if rep.RoundComplete {
			rounds++
		}
		if !more {
			break
		}
	}
	if writerErr != nil {
		return fmt.Errorf("live writer failed: %w", writerErr)
	}
	if n := len(fs.AuditFindings()); n != 0 {
		return fmt.Errorf("FINDING: %d tampered lines on a clean system", n)
	}
	fmt.Printf("clean sweep: %d rounds completed under live traffic, zero findings\n", rounds)

	// Degraded read-back: the marker files span every member, so this
	// whole-set read forces reconstruction of the failed member's
	// blocks — and must come back byte-identical (zero acked-write
	// loss while degraded).
	if degraded {
		total := 0
		for f := 0; f < 8; f++ {
			ino, lerr := fs.Lookup(fmt.Sprintf("span%02d", f))
			if lerr != nil {
				return lerr
			}
			got, rerr := fs.ReadFile(ino)
			if rerr != nil {
				return fmt.Errorf("degraded read-back of span%02d: %w", f, rerr)
			}
			for i := range got {
				if got[i] != byte(i*13+7+f) {
					return fmt.Errorf("FINDING: degraded read-back of span%02d diverged at byte %d", f, i)
				}
			}
			total += len(got)
		}
		fmt.Printf("degraded read-back: %d bytes re-read intact across the member failure\n", total)
	}

	// Tamper mid-traffic: forge a valid-looking frame into a member
	// block of the first heated line, then time its detection. Over an
	// array the forge lands raw on the owning member's medium at the
	// member-local address.
	victim := lines[0]
	member := victim.Start + 1
	forged := make([]byte, device.DataBytes)
	for i := range forged {
		forged[i] = byte(i * 7)
	}
	if arr != nil {
		vm, lpba := arr.Locate(member)
		bits := device.ForgedFrameBits(lpba, forged)
		base := int(lpba) * device.DotsPerBlock
		from := lpba
		if from > 0 {
			from--
		}
		arr.MemberDevice(vm).TamperRaw(from, lpba+2, func(m *medium.Medium) {
			for i, b := range bits {
				m.MWB(base+i, b)
			}
		})
		fmt.Printf("attacker forges block %d of heated line %d (member %d, local block %d) during live traffic\n",
			member, victim.Start, vm, lpba)
	} else {
		raw := fs.Device().(*device.Device)
		bits := device.ForgedFrameBits(member, forged)
		base := int(member) * device.DotsPerBlock
		raw.TamperRaw(victim.Start, member+2, func(m *medium.Medium) {
			for i, b := range bits {
				m.MWB(base+i, b)
			}
		})
		fmt.Printf("attacker forges block %d of heated line %d during live traffic\n", member, victim.Start)
	}

	detected := func() bool {
		for _, f := range fs.AuditFindings() {
			if f.Line.Start == victim.Start {
				return true
			}
		}
		return false
	}
	steps := 0
	for ; steps < bound && !detected(); steps++ {
		fs.AuditStep(auditBatch)
	}
	if !detected() {
		return fmt.Errorf("FINDING ESCAPED: tamper of line %d not reported within the %d-step bound", victim.Start, bound)
	}
	st := fs.Stats()
	fmt.Printf("tamper detected after %d audit steps (bound %d); cumulative: %d steps, %d rounds, %d lines checked, %d findings\n",
		steps, bound, st.AuditSteps, st.AuditRounds, st.AuditLinesChecked, st.AuditFindings)

	if arr != nil {
		ast := arr.ArrayStats()
		if degraded {
			if ast.DegradedReads == 0 {
				return fmt.Errorf("FINDING: no degraded reads recorded — the reconstruction path was never exercised")
			}
			fmt.Printf("degraded serving held: %d reads served via reconstruction (%d blocks rebuilt from the parity group) with member %d down\n",
				ast.DegradedReads, ast.ReconstructedBlocks, failM)
		}
		switch {
		case canHeal:
			if st.AuditRepairs != 1 || st.AuditRepairFailures != 0 {
				return fmt.Errorf("FINDING NOT HEALED: %d repairs, %d repair failures for one tampered line",
					st.AuditRepairs, st.AuditRepairFailures)
			}
			rep, verr := arr.VerifyLine(victim.Start)
			if verr != nil || !rep.OK {
				return fmt.Errorf("FINDING NOT HEALED: line %d does not re-verify clean after repair (%v)", victim.Start, verr)
			}
			fmt.Printf("self-healing: line %d rebuilt in place from the parity group and re-verified clean (%d line repair, finding retained as evidence)\n",
				victim.Start, ast.RepairedLines)
		case degraded && parity >= 1:
			fmt.Println("repair deferred: the lost member consumes the parity budget; rebuild it first (RepairMember), then the tampered line heals")
		}
	}
	fmt.Println("online verification complete: detection holds under live load")
	return nil
}

// fsckJournal builds a file system whose syncs ride the summary tail,
// optionally injects checkpoint-region damage, then verifies the chain
// the way a recovery fsck would: mount from the last checkpoint, roll
// forward, cross-check the journaled back-pointers against the
// replayed imap and the liveness table against the inodes. Any
// damage — including the double-torn condition, where no checkpoint
// slot survives — is a finding returned as an error (non-zero exit),
// never silently tolerated. With devices > 1 the same check runs over
// the striped array — the journal lives in the global block space, so
// the verification is geometry-blind.
func fsckJournal(blocks, workers int, inject string, devices, parity int) error {
	fmt.Println("\n== file-system journal check ==")
	dev := openStore(blocks, workers, devices, parity)
	opts := sero.FSOptions{
		SegmentBlocks:   32,
		CheckpointEvery: 1 << 20, // everything after the first sync journals
		HeatAware:       true,
		Concurrency:     workers,
	}
	fs, err := sero.NewFS(dev, opts)
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("log%02d", i)
		ino, err := fs.Create(name, 0)
		if err != nil {
			return err
		}
		data := make([]byte, 2*sero.BlockSize)
		copy(data, fmt.Sprintf("audit log %d", i))
		if err := fs.Write(ino, 0, data); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
	}
	if err := fs.Rename("log00", "log00.archived"); err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	if err := injectDamage(dev, fs, inject); err != nil {
		return err
	}
	rep, err := sero.CheckFSJournal(dev, opts)
	if errors.Is(err, sero.ErrTornCheckpoint) {
		return fmt.Errorf("FINDING: both checkpoint slots are torn or corrupt — "+
			"the medium has been formatted but no consistent state survives; "+
			"refusing to treat it as an empty file system (%w)", err)
	}
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if !rep.Healthy() {
		return fmt.Errorf("FINDING: summary chain failed verification: "+
			"%d imap mismatches, %d back-pointer mismatches, liveness table %s (%d disagreements)",
			rep.ImapMismatches, rep.BackPtrMismatches, tableState(rep), rep.TableMismatches)
	}
	fmt.Println("summary chain verified: every acked sync is replayable, liveness table agrees")
	return nil
}

// tableState renders the liveness-table half of a report for the
// findings line.
func tableState(rep sero.FSJournalReport) string {
	switch {
	case !rep.TablePresent:
		return "absent"
	case !rep.TableValid:
		return fmt.Sprintf("REJECTED (%s)", rep.TableStop)
	default:
		return "valid"
	}
}

// injectDamage applies the requested -inject fault to the checkpoint
// region through the raw device interface — the same writes an
// attacker or a failing controller could issue.
func injectDamage(dev *sero.Device, fs *sero.FS, inject string) error {
	if inject == "none" {
		return nil
	}
	slot := fs.Params().CheckpointBlocks / 2
	switch inject {
	case "torn-checkpoints":
		fmt.Println("injecting: tearing both checkpoint slots")
		garbage := make([]byte, sero.BlockSize)
		for i := range garbage {
			garbage[i] = 0xEE
		}
		for _, base := range []uint64{0, uint64(slot)} {
			if err := dev.Write(base, garbage); err != nil {
				return err
			}
		}
	case "table":
		fmt.Println("injecting: corrupting the checkpointed liveness table")
		// Each slot frames [len][core][sum][table-len][table][table-sum];
		// flip the first byte of the table payload in every written
		// slot, leaving the core frame — and so the checkpoint — intact.
		corrupted := false
		for _, base := range []uint64{0, uint64(slot)} {
			img, _ := sero.ReadCheckpointPrefix(dev, base, slot)
			if len(img) == 0 {
				continue
			}
			total := binary.BigEndian.Uint64(img[:8])
			if total == 0 || total+24 >= uint64(len(img)) {
				continue
			}
			tlen := binary.BigEndian.Uint64(img[total+16 : total+24])
			if tlen == 0 {
				continue
			}
			off := total + 24 // first byte of the table payload
			blk := off / uint64(sero.BlockSize)
			data := img[blk*uint64(sero.BlockSize) : (blk+1)*uint64(sero.BlockSize)]
			data[off%uint64(sero.BlockSize)] ^= 0xFF
			if err := dev.Write(base+blk, data); err != nil {
				return err
			}
			corrupted = true
		}
		if !corrupted {
			return fmt.Errorf("inject table: no liveness table found to corrupt")
		}
	}
	return nil
}

func run(blocks int, attackMode string, workers, devices, parity int) error {
	dev := openStore(blocks, workers, devices, parity)
	arr := dev.Array()

	// Populate: three heated lines of compliance records.
	for i := 0; i < 3; i++ {
		var lineBlocks [][]byte
		for b := 0; b < 3; b++ {
			blk := make([]byte, sero.BlockSize)
			copy(blk, fmt.Sprintf("compliance record %d.%d", i, b))
			lineBlocks = append(lineBlocks, blk)
		}
		start, logN, err := dev.WriteLine(lineBlocks)
		if err != nil {
			return err
		}
		if _, err := dev.Heat(start, logN); err != nil {
			return err
		}
	}
	fmt.Printf("prepared %d heated lines\n", len(dev.Lines()))
	if arr != nil {
		fmt.Printf("array geometry: %d members, %d parity, stripe unit %d blocks (%d logical blocks)\n",
			devices, parity, arrayStripe, arr.Blocks())
	}

	switch attackMode {
	case "none":
	case "wipe":
		fmt.Println("attacker wipes all host metadata (device registry lost)")
		// Recover() below rebuilds from the medium alone, which is the
		// point of the demonstration. Over an array with parity the
		// attacker additionally plants a forged heated line on one
		// member's parity territory — an address outside the logical
		// block space; the parity-group scan must attribute it to the
		// member instead of dropping it.
		if arr != nil && parity > 0 {
			m, lpba, err := parityTerritory(arr, 4)
			if err != nil {
				return err
			}
			var rogue [][]byte
			for b := 0; b < 3; b++ {
				blk := make([]byte, sero.BlockSize)
				copy(blk, fmt.Sprintf("forged evidence %d", b))
				rogue = append(rogue, blk)
			}
			mdev := arr.MemberDevice(m)
			if err := mdev.WriteLineBatch(lpba, 2, rogue); err != nil {
				return err
			}
			if _, err := mdev.HeatLine(lpba, 2); err != nil {
				return err
			}
			fmt.Printf("attacker also plants a forged heated line on member %d's parity territory (local block %d)\n", m, lpba)
		}
	case "erase":
		fmt.Println("attacker runs a bulk eraser over the medium")
		if arr != nil {
			for m := 0; m < arr.Members(); m++ {
				arr.MemberDevice(m).Medium().BulkErase()
			}
		} else {
			dev.RawDevice().Medium().BulkErase()
		}
	default:
		return fmt.Errorf("unknown attack %q", attackMode)
	}

	rep, err := dev.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("scan recovered %d heated lines (%d unparseable, %d conflicts)\n",
		len(rep.Lines), len(rep.Unparseable), len(rep.Conflicts))
	for _, li := range rep.Lines {
		vr, err := dev.Verify(li.Start)
		if err != nil {
			return err
		}
		status := "intact"
		if vr.Tampered() {
			status = "TAMPERED (evidence preserved)"
		}
		fmt.Printf("  line %4d (+%2d blocks, heated at t=%dns): %s\n",
			li.Start, li.Blocks(), li.Record.HeatedAt, status)
	}
	if arr != nil {
		findings := arr.ScanFindings()
		fmt.Printf("parity-group scan: %d per-member findings\n", len(findings))
		for _, f := range findings {
			fmt.Printf("  member %d: %s at local block %d\n", f.Member, f.Kind, f.Local)
		}
		if attackMode == "wipe" && parity > 0 && len(findings) == 0 {
			return fmt.Errorf("FINDING ESCAPED: the forged line on parity territory was not surfaced by the member scans")
		}
		ast := arr.ArrayStats()
		for m, c := range ast.MemberClocks {
			state := "live"
			if ast.Failed[m] {
				state = "FAILED"
			}
			fmt.Printf("  member %d: %s, clock %v\n", m, state, c)
		}
	}
	fmt.Println(dev.Audit().Summary())
	return nil
}
