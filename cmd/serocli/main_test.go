package main

import "testing"

func TestRunTour(t *testing.T) {
	if err := run(2048); err != nil {
		t.Fatal(err)
	}
}
