package main

import "testing"

func TestRunTour(t *testing.T) {
	if err := run(2048, 2); err != nil {
		t.Fatal(err)
	}
}
