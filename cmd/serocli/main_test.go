package main

import "testing"

func TestRunTour(t *testing.T) {
	if err := run(2048, 2, 0, 128, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTourBlockAtATime(t *testing.T) {
	// The pre-batching write path (writeback=1) must behave
	// identically apart from virtual time.
	if err := run(2048, 1, 1, 128, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTourCheckpointEverySync(t *testing.T) {
	// ckpt-every=1 reproduces the pre-journal durability behaviour.
	if err := run(2048, 1, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTourBackgroundCleaner(t *testing.T) {
	// The tour must also work with the watermark cleaner armed.
	if err := run(2048, 2, 0, 128, 6); err != nil {
		t.Fatal(err)
	}
}
