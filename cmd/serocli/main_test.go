package main

import (
	"os"
	"testing"

	"sero/internal/serve"
)

func TestRunTour(t *testing.T) {
	if err := run(2048, 2, 0, 128, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTourBlockAtATime(t *testing.T) {
	// The pre-batching write path (writeback=1) must behave
	// identically apart from virtual time.
	if err := run(2048, 1, 1, 128, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTourCheckpointEverySync(t *testing.T) {
	// ckpt-every=1 reproduces the pre-journal durability behaviour.
	if err := run(2048, 1, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTourBackgroundCleaner(t *testing.T) {
	// The tour must also work with the watermark cleaner armed.
	if err := run(2048, 2, 0, 128, 6); err != nil {
		t.Fatal(err)
	}
}

func TestBenchServeSmall(t *testing.T) {
	out := t.TempDir() + "/bench.json"
	err := benchServe([]string{
		"-files", "64", "-ops", "512", "-sessions", "1,2",
		"-sync-every", "16", "-burst-every", "64", "-burst-len", "8",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.ValidateJSON(data); err != nil {
		t.Fatalf("recorded report fails the schema check: %v", err)
	}
	rep, err := serve.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Config.Sessions != 1 || rep.Runs[1].Config.Sessions != 2 {
		t.Fatalf("unexpected runs: %+v", rep.Runs)
	}
}

func TestBenchServeRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad-sessions":  {"-sessions", "1,zero", "-files", "8", "-ops", "8"},
		"empty-list":    {"-sessions", ",", "-files", "8", "-ops", "8"},
		"zero-seed":     {"-seed", "0", "-files", "8", "-ops", "8"},
		"stray-arg":     {"-files", "8", "extra"},
		"overpartition": {"-sessions", "16", "-files", "4", "-ops", "8"},
	} {
		if err := benchServe(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSessions(t *testing.T) {
	got, err := parseSessions("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("got %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-2", "a", "1,,2"} {
		if _, err := parseSessions(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
