// Command serocli runs a scripted tour of the SERO device: it writes
// files through the heat-aware LFS, heats one, attacks the medium as
// the §5 insider would, and shows the audit catching it. It is the
// quickest way to see the whole stack working end to end.
//
// Usage:
//
//	serocli [-blocks N] [-j workers] [-writeback N] [-ckpt-every N] [-clean-watermark N]
//
// Flags (all validated, nonsensical values are rejected rather than
// silently clamped):
//
//	-blocks N          device size in 512-byte blocks (default 2048)
//	-j N               audit and cleaner worker fan-out; must be
//	                   positive, 1 = serial (default 1)
//	-writeback N       group-commit granularity in blocks; must be 0
//	                   (whole segments) or positive, 1 = block-at-a-time
//	                   (default 0)
//	-ckpt-every N      checkpoint interval in appended blocks; must be
//	                   positive, 1 = checkpoint every sync (default 128)
//	-clean-watermark N free-segment threshold that arms the background
//	                   cleaner goroutine; must be 0 (foreground-only
//	                   cleaning, the default) or positive
//
// Example invocations:
//
//	serocli                                  # defaults, serial
//	serocli -blocks 4096 -j 4 -writeback 16  # batched writes, fanned-out audit
//	serocli -j 4 -clean-watermark 8          # cleaning off the foreground lock
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"sero"
	"sero/internal/device"
)

func main() {
	blocks := flag.Int("blocks", 2048, "device size in 512-byte blocks")
	workers := flag.Int("j", 1, "audit and cleaner concurrency (worker count; 1 = serial)")
	writeback := flag.Int("writeback", 0, "group-commit granularity in blocks (1 = block-at-a-time, 0 = whole segments)")
	ckptEvery := flag.Int("ckpt-every", 128, "checkpoint interval in appended blocks (1 = checkpoint every sync)")
	cleanWM := flag.Int("clean-watermark", 0, "free-segment threshold arming the background cleaner (0 = foreground-only cleaning)")
	flag.Parse()
	// Nonsensical values are rejected with a clear error rather than
	// silently clamped by the library.
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "serocli: -j must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	if *writeback < 0 {
		fmt.Fprintf(os.Stderr, "serocli: -writeback must be 0 (whole segments) or positive (got %d)\n", *writeback)
		os.Exit(2)
	}
	if *ckptEvery <= 0 {
		fmt.Fprintf(os.Stderr, "serocli: -ckpt-every must be positive (got %d)\n", *ckptEvery)
		os.Exit(2)
	}
	if *cleanWM < 0 {
		fmt.Fprintf(os.Stderr, "serocli: -clean-watermark must be 0 (off) or positive (got %d)\n", *cleanWM)
		os.Exit(2)
	}
	if err := run(*blocks, *workers, *writeback, *ckptEvery, *cleanWM); err != nil {
		fmt.Fprintln(os.Stderr, "serocli:", err)
		os.Exit(1)
	}
}

func run(blocks, workers, writeback, ckptEvery, cleanWM int) error {
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})
	fs, err := sero.NewFS(dev, sero.FSOptions{
		SegmentBlocks:   32,
		WritebackBlocks: writeback,
		CheckpointEvery: ckptEvery,
		HeatAware:       true,
		Concurrency:     workers,
		CleanWatermark:  cleanWM,
	})
	if err != nil {
		return err
	}
	defer fs.Close()

	fmt.Println("== 1. normal WMRM operation ==")
	ledger, err := fs.Create("ledger.db", 0)
	if err != nil {
		return err
	}
	for day := 1; day <= 3; day++ {
		entry := bytes.Repeat([]byte(fmt.Sprintf("day-%d transactions; ", day)), 40)
		if err := fs.Write(ledger, uint64((day-1)*len(entry)), entry); err != nil {
			return err
		}
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	fmt.Println("ledger.db written and rewritten freely (write-many)")

	fmt.Println("\n== 2. audit snapshot: heat the ledger ==")
	res, err := fs.HeatFile("ledger.db")
	if err != nil {
		return err
	}
	fmt.Printf("ledger.db frozen into line %d (%d blocks); hash %x...\n",
		res.Line.Start, res.Line.Blocks(), res.Line.Record.Hash[:8])

	fmt.Println("\n== 3. the file stays readable at full speed ==")
	content, err := fs.ReadFile(ledger)
	if err != nil {
		return err
	}
	fmt.Printf("read back %d bytes magnetically\n", len(content))

	fmt.Println("\n== 4. a dishonest CEO rewrites history (raw access) ==")
	target := res.Line.Start + 2
	forged := make([]byte, sero.BlockSize)
	copy(forged, "day-2 transactions never happened")
	bits := device.ForgedFrameBits(target, forged)
	med := dev.Store().Device().Medium()
	base := int(target) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	fmt.Println("block", target, "rewritten with a perfectly consistent forged frame")

	fmt.Println("\n== 5. the audit ==")
	fmt.Print(dev.Audit().Summary())

	st := dev.Lifecycle()
	fmt.Printf("lifecycle: %d/%d blocks read-only (%.1f%%), virtual time %v\n",
		st.HeatedBlocks, st.TotalBlocks, st.ReadOnlyRatio*100, st.VirtualTime)
	fst := fs.Stats()
	fmt.Printf("durability: %d syncs acked by %d summary records + %d checkpoints (ckpt-every=%d blocks)\n",
		fst.Syncs, fst.JournalRecords, fst.Checkpoints, ckptEvery)
	fmt.Printf("cleaner: %d passes (%d background), %d blocks copied, %d stale moves dropped (clean-watermark=%d)\n",
		fst.CleanerPasses, fst.CleanerBgRuns, fst.CleanerCopied, fst.CleanerStaleMoves, cleanWM)
	return nil
}
