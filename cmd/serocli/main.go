// Command serocli runs a scripted tour of the SERO device: it writes
// files through the heat-aware LFS, heats one, attacks the medium as
// the §5 insider would, and shows the audit catching it. It is the
// quickest way to see the whole stack working end to end.
//
// Usage:
//
//	serocli [-blocks N] [-j workers] [-writeback N] [-ckpt-every N] [-clean-watermark N]
//	serocli bench-serve [-files N] [-ops N] [-sessions LIST] [-out FILE] [...]
//	serocli trace [-files N] [-ops N] [-sessions N] [-j N] [-buffer N] [-out FILE]
//
// Flags (all validated, nonsensical values are rejected rather than
// silently clamped):
//
//	-blocks N          device size in 512-byte blocks (default 2048)
//	-j N               audit and cleaner worker fan-out; must be
//	                   positive, 1 = serial (default 1)
//	-writeback N       group-commit granularity in blocks; must be 0
//	                   (whole segments) or positive, 1 = block-at-a-time
//	                   (default 0)
//	-ckpt-every N      checkpoint interval in appended blocks; must be
//	                   positive, 1 = checkpoint every sync (default 128)
//	-clean-watermark N free-segment threshold that arms the background
//	                   cleaner goroutine; must be 0 (foreground-only
//	                   cleaning, the default) or positive
//
// The bench-serve subcommand records the serving-tier macro-benchmark:
// for each session count in -sessions it replays the zipfian read-mostly
// mix (internal/workload.Mix) over a -files-wide namespace from that
// many concurrent sessions against one FS, and writes the measured
// trajectory — per-op virtual-time latency percentiles, sustained
// throughput, and the full reproduction config — as a versioned JSON
// report (internal/serve.SchemaV1) to -out. Its own flags:
//
//	-files N      total namespace width (default 100000)
//	-ops N        total mix-op budget, population on top (default 32768)
//	-sessions L   comma-separated session counts (default "1,4,16")
//	-file-blocks N, -zipf F, -sync-every N, -burst-every N, -burst-len N
//	              workload shape (defaults: the DefaultMix blend)
//	-seed N       RNG seed deriving every session stream (default 42)
//	-writeback N, -ckpt-every N, -clean-watermark N, -j N
//	              FS knobs as for the tour (bench defaults:
//	              ckpt-every 65536, j 4 — the parallel write path,
//	              cleaner and mount fan out over 4 worker planes)
//	-affinity-classes N
//	              heat-affinity classes the sessions spread over
//	              (default 4; 1 = every append through one frontier,
//	              the pre-fan-out baseline)
//	-audit-every N
//	              background audit cadence in appended blocks
//	              (default 0 = continuous verification off; audit work
//	              is off-clock, the counters report its shadow cost)
//	-heat-files N extra files frozen into heated lines before the mix
//	              so the auditor has a population to sweep (default 0)
//	-devices L    comma-separated member-device widths to sweep
//	              (default "0": the raw single sled; N >= 1 replays the
//	              same mix over an N-member striped array, so one report
//	              holds the width trajectory)
//	-parity N     Reed–Solomon parity members for the striped widths,
//	              applied per width when it fits (parity < devices) and
//	              dropped otherwise — a "0,1,4"-style sweep keeps its
//	              parity-free raw and width-1 points (default 0)
//	-out FILE     report path (default BENCH_serving.json; use
//	              BENCH_serving_audit.json for the audit-armed run)
//
// The trace subcommand runs one traced serving run and exports the
// span stream as a Chrome trace_event JSON file loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: each session and each
// device worker plane appears as its own named track on the virtual
// timeline, with per-op lock-wait and device time in the event args.
// Its flags:
//
//	-files N, -ops N, -sessions N, -seed N, -j N
//	              workload and FS shape (defaults 512 files, 2048 ops,
//	              4 sessions, seed 42, 4 worker planes)
//	-buffer N     span-buffer cap (0 = 65536); overflow is counted,
//	              never blocking
//	-out FILE     Chrome JSON path (default trace.json)
//
// Example invocations:
//
//	serocli                                  # defaults, serial
//	serocli -blocks 4096 -j 4 -writeback 16  # batched writes, fanned-out audit
//	serocli -j 4 -clean-watermark 8          # cleaning off the foreground lock
//	serocli bench-serve                      # the committed BENCH_serving.json (~10 min)
//	serocli bench-serve -files 2048 -ops 4096 -sessions 1,2,4 -out /tmp/b.json
//	serocli bench-serve -devices 1,4 -parity 1 -out BENCH_serving.json
//	serocli bench-serve -audit-every 64 -heat-files 64 -out BENCH_serving_audit.json
//	serocli trace -out trace.json           # then open in ui.perfetto.dev
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sero"
	"sero/internal/device"
	"sero/internal/serve"
	"sero/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench-serve" {
		if err := benchServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "serocli: bench-serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := traceCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "serocli: trace:", err)
			os.Exit(1)
		}
		return
	}
	blocks := flag.Int("blocks", 2048, "device size in 512-byte blocks")
	workers := flag.Int("j", 1, "audit and cleaner concurrency (worker count; 1 = serial)")
	writeback := flag.Int("writeback", 0, "group-commit granularity in blocks (1 = block-at-a-time, 0 = whole segments)")
	ckptEvery := flag.Int("ckpt-every", 128, "checkpoint interval in appended blocks (1 = checkpoint every sync)")
	cleanWM := flag.Int("clean-watermark", 0, "free-segment threshold arming the background cleaner (0 = foreground-only cleaning)")
	flag.Parse()
	// Nonsensical values are rejected with a clear error rather than
	// silently clamped by the library.
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "serocli: -j must be positive (got %d)\n", *workers)
		os.Exit(2)
	}
	if *writeback < 0 {
		fmt.Fprintf(os.Stderr, "serocli: -writeback must be 0 (whole segments) or positive (got %d)\n", *writeback)
		os.Exit(2)
	}
	if *ckptEvery <= 0 {
		fmt.Fprintf(os.Stderr, "serocli: -ckpt-every must be positive (got %d)\n", *ckptEvery)
		os.Exit(2)
	}
	if *cleanWM < 0 {
		fmt.Fprintf(os.Stderr, "serocli: -clean-watermark must be 0 (off) or positive (got %d)\n", *cleanWM)
		os.Exit(2)
	}
	if err := run(*blocks, *workers, *writeback, *ckptEvery, *cleanWM); err != nil {
		fmt.Fprintln(os.Stderr, "serocli:", err)
		os.Exit(1)
	}
}

func run(blocks, workers, writeback, ckptEvery, cleanWM int) error {
	dev := sero.Open(sero.Options{Blocks: blocks, Quiet: true, Concurrency: workers})
	fs, err := sero.NewFS(dev, sero.FSOptions{
		SegmentBlocks:   32,
		WritebackBlocks: writeback,
		CheckpointEvery: ckptEvery,
		HeatAware:       true,
		Concurrency:     workers,
		CleanWatermark:  cleanWM,
	})
	if err != nil {
		return err
	}
	defer fs.Close()

	fmt.Println("== 1. normal WMRM operation ==")
	ledger, err := fs.Create("ledger.db", 0)
	if err != nil {
		return err
	}
	for day := 1; day <= 3; day++ {
		entry := bytes.Repeat([]byte(fmt.Sprintf("day-%d transactions; ", day)), 40)
		if err := fs.Write(ledger, uint64((day-1)*len(entry)), entry); err != nil {
			return err
		}
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	fmt.Println("ledger.db written and rewritten freely (write-many)")

	fmt.Println("\n== 2. audit snapshot: heat the ledger ==")
	res, err := fs.HeatFile("ledger.db")
	if err != nil {
		return err
	}
	fmt.Printf("ledger.db frozen into line %d (%d blocks); hash %x...\n",
		res.Line.Start, res.Line.Blocks(), res.Line.Record.Hash[:8])

	fmt.Println("\n== 3. the file stays readable at full speed ==")
	content, err := fs.ReadFile(ledger)
	if err != nil {
		return err
	}
	fmt.Printf("read back %d bytes magnetically\n", len(content))

	fmt.Println("\n== 4. a dishonest CEO rewrites history (raw access) ==")
	target := res.Line.Start + 2
	forged := make([]byte, sero.BlockSize)
	copy(forged, "day-2 transactions never happened")
	bits := device.ForgedFrameBits(target, forged)
	med := dev.RawDevice().Medium()
	base := int(target) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	fmt.Println("block", target, "rewritten with a perfectly consistent forged frame")

	fmt.Println("\n== 5. the audit ==")
	fmt.Print(dev.Audit().Summary())

	st := dev.Lifecycle()
	fmt.Printf("lifecycle: %d/%d blocks read-only (%.1f%%), virtual time %v\n",
		st.HeatedBlocks, st.TotalBlocks, st.ReadOnlyRatio*100, st.VirtualTime)
	fst := fs.Stats()
	fmt.Printf("durability: %d syncs acked by %d summary records + %d checkpoints (ckpt-every=%d blocks)\n",
		fst.Syncs, fst.JournalRecords, fst.Checkpoints, ckptEvery)
	fmt.Printf("cleaner: %d passes (%d background), %d blocks copied, %d stale moves dropped (clean-watermark=%d)\n",
		fst.CleanerPasses, fst.CleanerBgRuns, fst.CleanerCopied, fst.CleanerStaleMoves, cleanWM)
	return nil
}

// parseSessions parses the -sessions "1,4,16" list.
func parseSessions(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-sessions entry %q: want a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sessions list is empty")
	}
	return out, nil
}

// benchServe runs the serving-tier macro-benchmark and records the
// trajectory report.
func benchServe(args []string) error {
	fl := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	files := fl.Int("files", 100000, "total namespace width (files), partitioned over sessions")
	ops := fl.Int("ops", 32768, "total mix-op budget (population phase on top)")
	sessionsList := fl.String("sessions", "1,4,16", "comma-separated session counts to sweep")
	fileBlocks := fl.Int("file-blocks", 0, "per-file size cap in blocks (0 = DefaultMix)")
	zipf := fl.Float64("zipf", -1, "file-popularity skew theta in [0,1) (-1 = DefaultMix)")
	syncEvery := fl.Int("sync-every", 0, "ops per sync (0 = DefaultMix)")
	burstEvery := fl.Int("burst-every", 0, "ops between append bursts (0 = DefaultMix)")
	burstLen := fl.Int("burst-len", 0, "appends per burst (0 = DefaultMix)")
	seed := fl.Uint64("seed", 42, "RNG seed deriving every session stream")
	writeback := fl.Int("writeback", 0, "group-commit granularity in blocks (0 = whole segments)")
	ckptEvery := fl.Int("ckpt-every", 1<<16, "checkpoint interval in appended blocks")
	cleanWM := fl.Int("clean-watermark", 0, "background-cleaner threshold (0 = foreground-only)")
	workers := fl.Int("j", 4, "FS worker-plane fan-out (sync flush, cleaner, mount; 1 = serial)")
	classes := fl.Int("affinity-classes", 4, "heat-affinity classes the sessions spread over (1 = single frontier)")
	auditEvery := fl.Int("audit-every", 0, "background audit cadence in appended blocks (0 = continuous verification off)")
	heatFiles := fl.Int("heat-files", 0, "extra files frozen into heated lines before the mix (the audit population; 0 = none)")
	devicesList := fl.String("devices", "0", "comma-separated member-device widths to sweep (0 = the raw single sled, N >= 1 = an N-member striped array)")
	parity := fl.Int("parity", 0, "Reed–Solomon parity members for striped widths; applied per width when it fits (parity < devices), 0 otherwise")
	out := fl.String("out", "BENCH_serving.json", "report output path")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}
	counts, err := parseSessions(*sessionsList)
	if err != nil {
		return err
	}
	if *seed == 0 {
		return fmt.Errorf("-seed must be nonzero (the report schema treats 0 as missing)")
	}
	if *workers <= 0 {
		return fmt.Errorf("-j must be positive (got %d)", *workers)
	}
	if *classes <= 0 || *classes > 256 {
		return fmt.Errorf("-affinity-classes must be in [1,256] (got %d)", *classes)
	}
	if *auditEvery < 0 {
		return fmt.Errorf("-audit-every must be 0 (off) or positive (got %d)", *auditEvery)
	}
	if *heatFiles < 0 {
		return fmt.Errorf("-heat-files must be 0 (none) or positive (got %d)", *heatFiles)
	}
	widths, err := parseDevices(*devicesList)
	if err != nil {
		return err
	}
	if *parity < 0 {
		return fmt.Errorf("-parity must be 0 (none) or positive (got %d)", *parity)
	}

	var runs []serve.Result
	for _, n := range counts {
		for _, d := range widths {
			res, err := benchServeRun(n, d, *files, *ops, *seed, *parity, benchKnobs{
				fileBlocks: *fileBlocks, zipf: *zipf, syncEvery: *syncEvery,
				burstEvery: *burstEvery, burstLen: *burstLen,
				writeback: *writeback, ckptEvery: *ckptEvery, cleanWM: *cleanWM,
				workers: *workers, classes: *classes,
				auditEvery: *auditEvery, heatFiles: *heatFiles,
			})
			if err != nil {
				return err
			}
			runs = append(runs, res)
		}
	}

	rep := serve.NewReport(runs)
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("refusing to record an invalid report: %w", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := rep.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("bench-serve: wrote %s (%d runs, schema %s)\n", *out, len(runs), rep.Schema)
	return nil
}

// benchKnobs bundles the workload- and FS-shape flags one bench-serve
// run inherits.
type benchKnobs struct {
	fileBlocks, syncEvery, burstEvery, burstLen int
	writeback, ckptEvery, cleanWM, workers      int
	classes, auditEvery, heatFiles              int
	zipf                                        float64
}

// benchServeRun measures one (sessions, devices) trajectory point.
// Width 0 is the raw single sled; widths >= 1 run a striped array, with
// -parity applied when it fits the width (parity < devices) and no
// parity otherwise — so one sweep can mix a parity-striped wide run
// with the parity-free width-1 equivalence point.
func benchServeRun(n, d, files, ops int, seed uint64, parity int, k benchKnobs) (serve.Result, error) {
	cfg := serve.DefaultConfig(n, files, ops)
	cfg.Seed = seed
	if k.fileBlocks > 0 {
		cfg.FileBlocks = k.fileBlocks
	}
	if k.zipf >= 0 {
		cfg.ZipfTheta = k.zipf
	}
	if k.syncEvery > 0 {
		cfg.SyncEvery = k.syncEvery
	}
	if k.burstEvery > 0 {
		cfg.BurstEvery = k.burstEvery
	}
	if k.burstLen > 0 {
		cfg.BurstLen = k.burstLen
	}
	cfg.WritebackBlocks = k.writeback
	cfg.CheckpointEvery = k.ckptEvery
	cfg.CleanWatermark = k.cleanWM
	cfg.Concurrency = k.workers
	cfg.AffinityClasses = k.classes
	cfg.AuditEvery = k.auditEvery
	cfg.HeatFiles = k.heatFiles
	cfg.Devices = d
	if d >= 1 && parity < d {
		cfg.ParityDevices = parity
	}
	geom := "raw device"
	if d >= 1 {
		geom = fmt.Sprintf("devices=%d parity=%d", d, cfg.ParityDevices)
	}
	fmt.Printf("bench-serve: sessions=%d files=%d ops=%d %s ...\n", n, files, ops, geom)
	res, err := serve.Run(cfg)
	if err != nil {
		return res, fmt.Errorf("sessions=%d %s: %w", n, geom, err)
	}
	rd, sy := res.PerOp["read"], res.PerOp["sync"]
	fmt.Printf("bench-serve: sessions=%d %s: %d ops, %.1f kops/vsec, read p50/p99 %d/%d ns, sync p99 %d ns\n",
		n, geom, res.TotalOps, res.ThroughputOpsPerSec/1000, rd.P50NS, rd.P99NS, sy.P99NS)
	if k.auditEvery > 0 {
		fmt.Printf("bench-serve: sessions=%d: audit steps=%d rounds=%d lines-checked=%d findings=%d shadow=%dns (off-clock)\n",
			n, res.AuditSteps, res.AuditRounds, res.AuditLinesChecked, res.AuditFindings, res.AuditDeviceNS)
	}
	if d >= 1 && cfg.ParityDevices > 0 {
		fmt.Printf("bench-serve: sessions=%d %s: parity-writes=%d\n", n, geom, res.ParityBlockWrites)
	}
	return res, nil
}

// parseDevices parses the -devices "0,4" width list (0 = raw single
// sled, N >= 1 = an N-member striped array).
func parseDevices(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-devices entry %q: want a non-negative integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-devices list is empty")
	}
	return out, nil
}

// traceCmd runs one traced serving run and writes the span stream as
// Chrome trace_event JSON.
func traceCmd(args []string) error {
	fl := flag.NewFlagSet("trace", flag.ExitOnError)
	files := fl.Int("files", 512, "total namespace width (files), partitioned over sessions")
	ops := fl.Int("ops", 2048, "total mix-op budget (population phase on top)")
	sessions := fl.Int("sessions", 4, "concurrent client sessions")
	seed := fl.Uint64("seed", 42, "RNG seed deriving every session stream")
	workers := fl.Int("j", 4, "FS worker-plane fan-out (1 = serial)")
	buffer := fl.Int("buffer", 0, "span-buffer cap (0 = 65536)")
	out := fl.String("out", "trace.json", "Chrome trace_event JSON output path")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fl.Arg(0))
	}
	if *sessions <= 0 || *workers <= 0 {
		return fmt.Errorf("-sessions and -j must be positive")
	}
	if *seed == 0 {
		return fmt.Errorf("-seed must be nonzero")
	}

	cfg := serve.DefaultConfig(*sessions, *files, *ops)
	cfg.Seed = *seed
	cfg.Concurrency = *workers
	tr := trace.New(*buffer)
	res, err := serve.RunTraced(cfg, tr)
	if err != nil {
		return err
	}
	doc, err := trace.ChromeJSON(tr.Spans(), tr.Dropped())
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("trace: %d ops over %v of virtual time; %d spans (%d dropped) -> %s\n",
		res.TotalOps, time.Duration(res.VirtualNS), tr.Len(), tr.Dropped(), *out)
	fmt.Printf("trace: open it in https://ui.perfetto.dev or chrome://tracing\n")
	return nil
}
