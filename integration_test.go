package sero

// Full-stack integration tests: each walks a realistic multi-layer
// scenario end to end (file system + device + medium + recovery),
// crossing package boundaries the unit tests keep separate.

import (
	"bytes"
	"fmt"
	"testing"

	"sero/internal/device"
	"sero/internal/fossil"
	"sero/internal/retention"
	"sero/internal/sim"
	"sero/internal/venti"
)

func TestIntegrationFullLifecycle(t *testing.T) {
	// Life of one device: LFS workload → snapshots heated → insider
	// attack → audit catches it → image saved → reattached elsewhere →
	// evidence still verifiable.
	d := Open(Options{Blocks: 4096, Quiet: true})
	fs, err := NewFS(d, FSOptions{SegmentBlocks: 32, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}

	// Workload phase.
	var heatedNames []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("doc-%d", i)
		ino, cerr := fs.Create(name, uint8(i%2))
		if cerr != nil {
			t.Fatal(cerr)
		}
		if werr := fs.WriteFile(ino, bytes.Repeat([]byte{byte(i)}, 3*BlockSize)); werr != nil {
			t.Fatal(werr)
		}
		if i%2 == 0 {
			if _, herr := fs.HeatFile(name); herr != nil {
				t.Fatal(herr)
			}
			heatedNames = append(heatedNames, name)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Insider attack on one heated file.
	victim := heatedNames[1]
	vIno, _ := fs.Lookup(victim)
	st, _ := fs.Stat(vIno)
	target := st.HeatLines[0] + 2
	bits := device.ForgedFrameBits(target, bytes.Repeat([]byte{0xEE}, BlockSize))
	med := d.Store().Device().(*device.Device).Medium()
	base := int(target) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}

	// Audit finds exactly one tampered line.
	audit := d.Audit()
	if audit.TamperedLines != 1 {
		t.Fatalf("audit found %d tampered lines, want 1\n%s", audit.TamperedLines, audit.Summary())
	}

	// Save, reload (fresh host), re-audit: same verdict.
	img := d.SaveImage()
	d2, err := LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	audit2 := d2.Audit()
	if audit2.TamperedLines != 1 {
		t.Fatalf("reloaded audit found %d tampered lines\n%s", audit2.TamperedLines, audit2.Summary())
	}
	if len(d2.Lines()) != len(d.Lines()) {
		t.Fatal("heated lines lost across image round trip")
	}

	// The untampered files still read correctly through a re-mounted
	// FS on the original device.
	fs2, err := MountFS(d, FSOptions{SegmentBlocks: 32, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if name == victim {
			continue
		}
		ino, lerr := fs2.Lookup(name)
		if lerr != nil {
			t.Fatal(lerr)
		}
		got, rerr := fs2.ReadFile(ino)
		if rerr != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 3*BlockSize)) {
			t.Fatalf("%s corrupted: %v", name, rerr)
		}
	}
}

func TestIntegrationArchivalPipeline(t *testing.T) {
	// Venti snapshots indexed by a fossilized index on one shared
	// store, with retention-managed expiry of old snapshots.
	d := Open(Options{Blocks: 16384, Quiet: true})
	arch := venti.New(d.Store())
	idx, err := fossil.New(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(31)

	data := make([]byte, 40*BlockSize)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	var roots []venti.Score
	for day := 0; day < 4; day++ {
		off := rng.Intn(40) * BlockSize
		for j := 0; j < BlockSize; j++ {
			data[off+j] = byte(rng.Uint64())
		}
		root, werr := arch.WriteStream(data)
		if werr != nil {
			t.Fatal(werr)
		}
		li, serr := arch.Snapshot(root)
		if serr != nil {
			t.Fatal(serr)
		}
		if ierr := idx.Insert(fossil.KeyOf(root[:]), li.Start); ierr != nil {
			t.Fatal(ierr)
		}
		roots = append(roots, root)
	}

	// Every root resolves through the index to its anchor line and
	// verifies end to end.
	for _, root := range roots {
		lineStart, lerr := idx.Lookup(fossil.KeyOf(root[:]))
		if lerr != nil {
			t.Fatal(lerr)
		}
		rep, verr := d.Verify(lineStart)
		if verr != nil || !rep.OK {
			t.Fatalf("anchor at %d: %+v %v", lineStart, rep, verr)
		}
		vrep, verr := arch.VerifySnapshot(root)
		if verr != nil || !vrep.OK {
			t.Fatalf("snapshot %v: %v", root, verr)
		}
	}
}

func TestIntegrationRetentionOverFacade(t *testing.T) {
	d := Open(Options{Blocks: 1024, Quiet: true})
	mgr := retention.NewManager(d.Store(),
		retention.Policy{Class: "test", Period: 0},
	)
	blk := bytes.Repeat([]byte{9}, BlockSize)
	rec, err := mgr.Ingest("r1", "test", [][]byte{blk})
	if err != nil {
		t.Fatal(err)
	}
	// Period 0: immediately expired; shred through the facade-visible
	// machinery.
	if _, err := mgr.Shred("r1"); err != nil {
		t.Fatal(err)
	}
	ok, err := d.Store().Device().(*device.Device).IsShredded(rec.Line.Start)
	if err != nil || !ok {
		t.Fatalf("not shredded: %v %v", ok, err)
	}
	// Tombstone survives recovery.
	rep, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 1 {
		t.Fatalf("tombstone lost: %+v", rep)
	}
}

func TestIntegrationNoisyEndToEnd(t *testing.T) {
	// The full stack on the realistic noisy medium: ECC, erb retries
	// and verification must all hold up without the Quiet crutch.
	d := Open(Options{Blocks: 512, Seed: 2026})
	fs, err := NewFS(d, FSOptions{SegmentBlocks: 32, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Create("noisy.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("signal/noise "), 100)
	if err := fs.WriteFile(ino, content); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("noisy.dat"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("noisy read: %v", err)
	}
	reps, err := fs.VerifyFile("noisy.dat")
	if err != nil || !reps[0].OK {
		t.Fatalf("noisy verify: %v", err)
	}
	audit := d.Audit()
	if !audit.Clean() {
		t.Fatalf("noisy audit: %s", audit.Summary())
	}
}
