package sero

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAuditParallelContract verifies the acceptance contract of the
// sharded verification engine at scale: on a device with >= 1024
// heated lines, an 8-way audit returns a report byte-identical to the
// serial one and consumes at most 1/3 of its virtual time.
func TestAuditParallelContract(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-line audit is not short")
	}
	const lines = 1024
	d := Open(Options{Blocks: 2 * lines, Quiet: true})
	blk := make([]byte, BlockSize)
	for i := 0; i < lines; i++ {
		copy(blk, fmt.Sprintf("contract line %d", i))
		start, logN, err := d.WriteLine([][]byte{blk})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Heat(start, logN); err != nil {
			t.Fatal(err)
		}
	}

	t0 := d.ElapsedVirtual()
	serial := d.AuditParallel(1)
	serialVirt := d.ElapsedVirtual() - t0

	t1 := d.ElapsedVirtual()
	parallel := d.AuditParallel(8)
	parallelVirt := d.ElapsedVirtual() - t1

	if !serial.Clean() || len(serial.Reports) != lines {
		t.Fatalf("serial audit wrong: clean=%v lines=%d", serial.Clean(), len(serial.Reports))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("8-way audit report differs from serial")
	}
	if parallelVirt*3 > serialVirt {
		t.Fatalf("8-way audit virtual time %v not >=3x faster than serial %v",
			parallelVirt, serialVirt)
	}
}
