package sero

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

// TestExamplesBuildAndRun compiles every program under examples/ and
// runs it, asserting a zero exit status. The examples are the package
// documentation users actually execute, so they stay green with the
// API or this test fails the build.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("building examples is not short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no example programs found")
	}
	binDir := t.TempDir()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			if runtime.GOOS == "windows" {
				bin += ".exe"
			}
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			run := exec.Command(bin)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("example exited non-zero: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
