package sero

// One benchmark per reproducible artifact of the paper (Figures 2, 3,
// 7, 8, 9 and experiments E1–E13 — see DESIGN.md for the index). Each
// bench regenerates its figure/experiment per iteration and reports
// the figure's headline quantity via ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sero/internal/experiments"
	"sero/internal/physics"
)

func BenchmarkFig2StateMachine(b *testing.B) {
	matched := true
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig2()
		matched = matched && res.AllMatch
	}
	if !matched {
		b.Fatal("state machine deviates from Fig 2")
	}
}

func BenchmarkFig3HeatLine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(3)
		if err != nil {
			b.Fatal(err)
		}
		if res.MetaSpaceBits != 3584 {
			b.Fatal("layout mismatch")
		}
	}
}

func BenchmarkFig7Anneal(b *testing.B) {
	var k700 float64
	for i := 0; i < b.N; i++ {
		pts := physics.RunFig7(uint64(i + 1))
		k700 = pts[len(pts)-1].AnisotropyJm3
	}
	b.ReportMetric(k700/1e3, "kJ/m³@700C")
}

func BenchmarkFig8XRD(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res := physics.RunFig8(uint64(i + 1))
		peak = res.AsGrownPeak.TwoThetaDeg
	}
	b.ReportMetric(peak, "peak-2θ-deg")
}

func BenchmarkFig9XRD(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res := physics.RunFig9(uint64(i + 1))
		peak = res.AnnealedPeak.TwoThetaDeg
	}
	b.ReportMetric(peak, "peak-2θ-deg")
}

func BenchmarkE1OpLatency(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.ErbOverMrb
	}
	b.ReportMetric(ratio, "erb/mrb")
}

func BenchmarkE2Cleaner(b *testing.B) {
	var stranded float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE2(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		stranded = float64(res.Oblivious[len(res.Oblivious)-1].StrandedBlocks)
	}
	b.ReportMetric(stranded, "oblivious-stranded-blocks")
}

func BenchmarkE3Bimodality(b *testing.B) {
	var aware, obl float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE3(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		aware, obl = res.AwareBimodality, res.ObliviousBimodality
	}
	b.ReportMetric(aware, "aware-bimodality")
	b.ReportMetric(obl, "oblivious-bimodality")
}

func BenchmarkE4Attacks(b *testing.B) {
	var covered float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE4(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, a := range res.Results {
			if a.Prevented || a.Detected {
				n++
			}
		}
		covered = float64(n) / float64(len(res.Results))
	}
	b.ReportMetric(covered, "caught-fraction")
}

func BenchmarkE5Overhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE5()
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.Points[len(res.Points)-1].OverheadFraction
	}
	b.ReportMetric(overhead*100, "overhead-%-at-2^8")
}

func BenchmarkE6Archival(b *testing.B) {
	var dedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		dedup = float64(res.VentiDeduped)
	}
	b.ReportMetric(dedup, "venti-deduped-blocks")
}

func BenchmarkE7ErbReliability(b *testing.B) {
	var miss float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunE7(uint64(i + 1))
		for _, p := range res.Points {
			if p.NoiseSigma == 0.05 && p.Retries == 8 {
				miss = p.MissRate
			}
		}
	}
	b.ReportMetric(miss, "miss-rate-σ0.05-r8")
}

func BenchmarkE8Aging(b *testing.B) {
	var ro float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE8(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		ro = res.Points[len(res.Points)-1].ReadOnlyRatio
	}
	b.ReportMetric(ro, "final-RO-ratio")
}

func BenchmarkE9Defects(b *testing.B) {
	var fail float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE9(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		fail = res.Points[3].SectorFailRate // 0.5% defect density
	}
	b.ReportMetric(fail, "fail-rate-at-0.5%")
}

func BenchmarkE10Pulse(b *testing.B) {
	var pulses float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunE10()
		for _, p := range res.Points {
			if p.PulseTempC == 700 {
				pulses = float64(p.PulsesToHeat)
			}
		}
	}
	b.ReportMetric(pulses, "pulses-to-heat-700C")
}

func BenchmarkE11Baselines(b *testing.B) {
	var detected float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE11()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, r := range res.Results {
			if r.Detected {
				n++
			}
		}
		detected = float64(n)
	}
	b.ReportMetric(detected, "technologies-detecting")
}

func BenchmarkE12Clustering(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE12(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		var aware, obl float64
		for _, r := range res.Rows {
			if r.Design == "ffs" {
				if r.HeatAware {
					aware = r.Bimodality
				} else {
					obl = r.Bimodality
				}
			}
		}
		gap = aware - obl
	}
	b.ReportMetric(gap, "ffs-bimodality-gap")
}

func BenchmarkE13Scrub(b *testing.B) {
	var latency float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE13(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		latency = res.Points[0].DetectionLatency.Seconds()
	}
	b.ReportMetric(latency*1000, "latency-ms-at-100ms-scrub")
}

// Device micro-benchmarks: wall-clock cost of the simulator itself
// (virtual-time latencies are E1's subject; these measure how fast the
// simulation runs on the host).

func newBenchDevice(b *testing.B, blocks int) *Device {
	b.Helper()
	return Open(Options{Blocks: blocks, Quiet: true})
}

func BenchmarkDeviceWrite(b *testing.B) {
	d := newBenchDevice(b, 64)
	data := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Write(uint64(i%64), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceRead(b *testing.B) {
	d := newBenchDevice(b, 64)
	data := make([]byte, BlockSize)
	for pba := uint64(0); pba < 64; pba++ {
		if err := d.Write(pba, data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Read(uint64(i % 64)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceHeatLine(b *testing.B) {
	data := make([]byte, BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := newBenchDevice(b, 8)
		for pba := uint64(0); pba < 8; pba++ {
			if err := d.Write(pba, data); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := d.Heat(0, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-audit benchmarks: wall-clock and virtual-time cost of
// auditing a device with 1024 heated lines at different fan-out
// widths. On a multicore host the wall-clock speedup tracks the worker
// count (the per-line physics and hashing dominate and run in
// parallel); the virt-ms/audit metric shows the deterministic
// virtual-time contract (max of per-worker elapsed) on any host.

var auditBench struct {
	once sync.Once
	dev  *Device
	err  error
}

const auditBenchLines = 1024

// auditBenchDevice lazily builds one shared device with 1024 heated
// two-block lines; audits are read-only, so every benchmark in the
// family reuses it.
func auditBenchDevice(b *testing.B) *Device {
	b.Helper()
	auditBench.once.Do(func() {
		d := Open(Options{Blocks: 2 * auditBenchLines, Quiet: true})
		blk := make([]byte, BlockSize)
		for i := 0; i < auditBenchLines; i++ {
			copy(blk, fmt.Sprintf("audit bench line %d", i))
			start, logN, err := d.WriteLine([][]byte{blk})
			if err != nil {
				auditBench.err = err
				return
			}
			if _, err := d.Heat(start, logN); err != nil {
				auditBench.err = err
				return
			}
		}
		auditBench.dev = d
	})
	if auditBench.err != nil {
		b.Fatal(auditBench.err)
	}
	return auditBench.dev
}

func benchmarkAudit(b *testing.B, workers int) {
	d := auditBenchDevice(b)
	b.ResetTimer()
	var virt time.Duration
	for i := 0; i < b.N; i++ {
		t0 := d.ElapsedVirtual()
		rep := d.AuditParallel(workers)
		virt = d.ElapsedVirtual() - t0
		if !rep.Clean() {
			b.Fatal("audit found tampering on a pristine device")
		}
		if len(rep.Reports) != auditBenchLines {
			b.Fatalf("audit covered %d lines, want %d", len(rep.Reports), auditBenchLines)
		}
	}
	b.ReportMetric(virt.Seconds()*1e3, "virt-ms/audit")
}

func BenchmarkAuditSerial(b *testing.B)    { benchmarkAudit(b, 1) }
func BenchmarkAuditParallel2(b *testing.B) { benchmarkAudit(b, 2) }
func BenchmarkAuditParallel4(b *testing.B) { benchmarkAudit(b, 4) }
func BenchmarkAuditParallel8(b *testing.B) { benchmarkAudit(b, 8) }

func BenchmarkDeviceVerifyLine(b *testing.B) {
	d := newBenchDevice(b, 8)
	data := make([]byte, BlockSize)
	for pba := uint64(0); pba < 8; pba++ {
		if err := d.Write(pba, data); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := d.Heat(0, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := d.Verify(0)
		if err != nil || !rep.OK {
			b.Fatal(err)
		}
	}
}
