// Venti archive: §4.2's content-addressed archival storage on SERO.
// Daily snapshots of a slowly changing dataset share unchanged blocks
// (content addressing deduplicates them); each snapshot's root score
// is anchored in a heated line, so one tiny write-once operation per
// day protects the entire hierarchy.
//
// Run with: go run ./examples/venti_archive
package main

import (
	"fmt"
	"log"

	"sero"
	"sero/internal/sim"
	"sero/internal/venti"
)

func main() {
	dev := sero.Open(sero.Options{Blocks: 16384, Quiet: true})
	arch := venti.New(dev.Store())
	rng := sim.NewRNG(2026)

	// The dataset: 80 blocks, of which a handful change every day.
	data := make([]byte, 80*sero.BlockSize)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}

	var roots []venti.Score
	for day := 1; day <= 5; day++ {
		// Business as usual: ~5% of blocks change.
		for c := 0; c < 4; c++ {
			off := rng.Intn(80) * sero.BlockSize
			for j := 0; j < sero.BlockSize; j++ {
				data[off+j] = byte(rng.Uint64())
			}
		}
		root, err := arch.WriteStream(data)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := arch.Snapshot(root); err != nil {
			log.Fatal(err)
		}
		roots = append(roots, root)
		st := arch.Stats()
		fmt.Printf("day %d: root %v anchored; %d blocks stored, %d deduplicated so far\n",
			day, root, st.BlocksWritten, st.BlocksDeduped)
	}

	// Every historical snapshot remains verifiable end to end: the
	// heated anchor, the root score, and every node under it.
	for i, root := range roots {
		rep, err := arch.VerifySnapshot(root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot day %d: tampered=%v\n", i+1, rep.Tampered())
	}

	st := dev.Lifecycle()
	fmt.Printf("read-only fraction after 5 snapshots: %.2f%% — anchors are tiny\n",
		st.ReadOnlyRatio*100)
}
