// Retention and shredding: §8's "Deletion" discussion. Compliance
// records are segregated by expiry class; when a class expires, its
// lines are physically shredded — the data becomes unrecoverable, but
// unlike a quiet deletion, the destruction leaves permanent physical
// evidence (heated tombstones). When every record has expired, the
// device is ready for physical decommissioning.
//
// Run with: go run ./examples/retention_shred
package main

import (
	"fmt"
	"log"
	"time"

	"sero"
	"sero/internal/retention"
)

func main() {
	dev := sero.Open(sero.Options{Blocks: 2048, Quiet: true})
	mgr := retention.NewManager(dev.Store(),
		retention.Policy{Class: "email-90d", Period: 90 * 24 * time.Hour},
		retention.Policy{Class: "financial-7y", Period: 7 * 365 * 24 * time.Hour},
	)

	// Ingest a mixed stream of records. Each is heated on arrival.
	mk := func(s string) [][]byte {
		b := make([]byte, sero.BlockSize)
		copy(b, s)
		return [][]byte{b}
	}
	for i := 0; i < 4; i++ {
		if _, err := mgr.Ingest(fmt.Sprintf("mail-%d", i), "email-90d", mk("mail body")); err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Ingest(fmt.Sprintf("ledger-%d", i), "financial-7y", mk("ledger row")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d records across 2 retention classes\n", len(mgr.Records()))

	// A dishonest CEO asks for an early shred. The manager refuses:
	// destruction is gated by the policy clock, not by requests.
	if _, err := mgr.Shred("ledger-0"); err != nil {
		fmt.Println("early shred refused:", err)
	}

	// 91 virtual days later, the mail class expires.
	dev.Store().Device().Clock().Advance(91 * 24 * time.Hour)
	n, err := mgr.ShredExpired()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retention sweep shredded %d expired mail records\n", n)

	// The shredded data is unrecoverable, but its destruction is
	// evident: the tombstones fail verification loudly.
	rep, err := mgr.Verify("mail-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shredded record verifies clean: %v (destruction is evident)\n", rep.OK)

	// Financial records are untouched.
	rep, err = mgr.Verify("ledger-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("financial record intact: %v\n", rep.OK)

	fmt.Printf("device decommissionable now: %v\n", mgr.Decommissionable())
	dev.Store().Device().Clock().Advance(7 * 365 * 24 * time.Hour)
	fmt.Printf("after the 7-year class lapses: %v\n", mgr.Decommissionable())
}
