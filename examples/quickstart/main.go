// Quickstart: open a simulated SERO device, write a line of blocks,
// heat it, verify it, tamper with it, and watch the verification fail.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sero"
	"sero/internal/device"
)

func main() {
	// A small simulated device: 256 blocks of 512 bytes.
	dev := sero.Open(sero.Options{Blocks: 256, Quiet: true})

	// Write three related blocks as one line (the library pads the
	// line to the next power of two and reserves block 0 for the
	// hash).
	blocks := [][]byte{
		fill("minutes of the board meeting, page 1"),
		fill("minutes of the board meeting, page 2"),
		fill("minutes of the board meeting, page 3"),
	}
	start, logN, err := dev.WriteLine(blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote line at block %d (2^%d blocks)\n", start, logN)

	// While unheated, the blocks are ordinary rewritable storage.
	if err := dev.Write(start+1, fill("page 1, revised")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewrote page 1 — the device is still write-many")

	// Heat the line: the hash of (address ‖ data) for every block is
	// burnt into write-once heated dots. Irreversible.
	li, err := dev.Heat(start, logN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heated: hash %x... stored at block %d\n", li.Record.Hash[:8], li.Start)

	// Verification passes, and the data is still readable.
	rep, err := dev.Verify(start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verify: tampered=%v\n", rep.Tampered())

	// The device now refuses ordinary writes into the heated line...
	if err := dev.Write(start+1, fill("page 1, falsified")); err != nil {
		fmt.Println("write into heated line refused:", err)
	}

	// ...so the attacker goes under the device: a raw medium write
	// with a perfectly consistent forged frame.
	bits := device.ForgedFrameBits(start+1, fill("page 1, falsified"))
	med := dev.RawDevice().Medium()
	base := int(start+1) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	fmt.Println("attacker rewrote the raw medium behind the device's back")

	// The heated hash catches it.
	rep, err = dev.Verify(start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verify: tampered=%v (hash mismatch=%v)\n", rep.Tampered(), rep.HashMismatch)
}

func fill(s string) []byte {
	b := make([]byte, sero.BlockSize)
	copy(b, s)
	return b
}
