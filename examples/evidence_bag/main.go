// Evidence bag: the live-forensics scenario of §8. An investigator
// must preserve suspect files on a running server without imaging the
// whole disk — "a storage device that can be instructed to heat
// evidence without having to copy it". Each bagged file is heated in
// place; the investigator's manifest is itself heated last, sealing
// the set.
//
// Run with: go run ./examples/evidence_bag
package main

import (
	"fmt"
	"log"
	"strings"

	"sero"
)

func main() {
	dev := sero.Open(sero.Options{Blocks: 4096, Quiet: true})
	fs, err := sero.NewFS(dev, sero.FSOptions{SegmentBlocks: 64, HeatAware: true})
	if err != nil {
		log.Fatal(err)
	}

	// The server's ordinary files, some of which will become evidence.
	files := map[string]string{
		"mail/outbox-07.mbox":  "From: ceo  To: cfo  Subject: delete the Q3 numbers",
		"tmp/build.log":        "compile output, boring",
		"docs/q3-real.xlsx":    "the real Q3 numbers",
		"docs/q3-revised.xlsx": "the public Q3 numbers",
		"cache/thumbnails.bin": "pixels",
	}
	for name, content := range files {
		ino, err := fs.Create(name, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := fs.WriteFile(ino, []byte(strings.Repeat(content+" | ", 30))); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server running,", len(files), "files on disk")

	// The investigation: bag the three relevant files. No copying, no
	// downtime — each file is relocated into its own line and heated.
	bag := []string{"mail/outbox-07.mbox", "docs/q3-real.xlsx", "docs/q3-revised.xlsx"}
	var manifest strings.Builder
	for _, name := range bag {
		res, err := fs.HeatFile(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&manifest, "%s line=%d hash=%x\n", name, res.Line.Start, res.Line.Record.Hash)
		fmt.Printf("bagged %-22s → line %4d, hash %x...\n", name, res.Line.Start, res.Line.Record.Hash[:8])
	}

	// Seal the bag: the manifest itself becomes a heated file.
	mIno, err := fs.Create("evidence/manifest.txt", 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile(mIno, []byte(manifest.String())); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.HeatFile("evidence/manifest.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("manifest sealed")

	// The server keeps working: unrelated files stay fully writable.
	ino, _ := fs.Lookup("tmp/build.log")
	if err := fs.WriteFile(ino, []byte("more boring output")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server still writing to unbagged files")

	// The suspect tries to clean up with rm — refused, and the
	// attempt would be tamper-evident even with raw access.
	if err := fs.Delete("mail/outbox-07.mbox"); err != nil {
		fmt.Println("suspect's rm refused:", err)
	}

	// In court: everything verifies.
	audit := dev.Audit()
	fmt.Print(audit.Summary())
	if audit.Clean() {
		fmt.Println("evidence bag intact: every heated line verifies")
	}
}
