// Audit snapshot: the paper's motivating database scenario (§1). A
// live database receives continuous updates on ordinary rewritable
// storage; at audit time a snapshot is frozen with the heat operation.
// The live data keeps its hard-disk-class performance, the snapshot
// gets optical-WORM-class tamper evidence — on the same device.
//
// Run with: go run ./examples/audit_snapshot
package main

import (
	"fmt"
	"log"

	"sero"
)

func main() {
	dev := sero.Open(sero.Options{Blocks: 8192, Quiet: true})
	fs, err := sero.NewFS(dev, sero.FSOptions{SegmentBlocks: 64, HeatAware: true})
	if err != nil {
		log.Fatal(err)
	}

	// The live database: four table files, updated in place.
	tables := make([]sero.Ino, 4)
	for t := range tables {
		tables[t], err = fs.Create(fmt.Sprintf("table-%d", t), 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	update := func(tick int) {
		for t := range tables {
			row := make([]byte, sero.BlockSize)
			copy(row, fmt.Sprintf("t%d tick%d: balance=%d;", t, tick, 1000+tick*7))
			if err := fs.Write(tables[t], uint64((tick%4)*sero.BlockSize), row); err != nil {
				log.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			log.Fatal(err)
		}
	}

	snapshotID := 0
	takeSnapshot := func() {
		snapshotID++
		for t := range tables {
			// Copy the table's current content into a snapshot file
			// with the snapshot affinity class, then heat it.
			content, err := fs.ReadFile(tables[t])
			if err != nil {
				log.Fatal(err)
			}
			name := fmt.Sprintf("snapshot-%02d-table-%d", snapshotID, t)
			ino, err := fs.Create(name, 1)
			if err != nil {
				log.Fatal(err)
			}
			if err := fs.WriteFile(ino, content); err != nil {
				log.Fatal(err)
			}
			if _, err := fs.HeatFile(name); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("snapshot %d frozen (4 tables)\n", snapshotID)
	}

	// Three business days: updates all day, snapshot every evening.
	for day := 0; day < 3; day++ {
		for q := 0; q < 4; q++ {
			update(day*4 + q)
		}
		takeSnapshot()
	}

	// The auditor arrives: verify everything heated on the device.
	audit := dev.Audit()
	fmt.Print(audit.Summary())

	// The live tables were never entangled with the snapshots: the
	// heat-aware allocator keeps heated lines in their own segments
	// (bimodality 1.0 means perfect separation, §4.1).
	fmt.Printf("segment bimodality: %.2f\n", fs.Bimodality())

	st := dev.Lifecycle()
	fmt.Printf("device ageing: %.1f%% read-only after %d snapshots (virtual time %v)\n",
		st.ReadOnlyRatio*100, snapshotID, st.VirtualTime)
}
