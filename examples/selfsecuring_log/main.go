// Self-securing audit log: §8's suggestion that tamper-evident storage
// strengthens self-securing storage [47] — the device keeps a log of
// the commands it was given and periodically heats completed log
// lines, so even a fully compromised host cannot silently rewrite the
// history of its own actions. Entries are also indexed in a fossilized
// index (§4.2) for trustworthy lookup.
//
// Run with: go run ./examples/selfsecuring_log
package main

import (
	"fmt"
	"log"

	"sero"
	"sero/internal/device"
	"sero/internal/fossil"
)

func main() {
	dev := sero.Open(sero.Options{Blocks: 8192, Quiet: true})
	idx, err := fossil.New(dev.Store())
	if err != nil {
		log.Fatal(err)
	}

	// The storage device journals every host command into log lines of
	// 4 blocks; each sealed line is heated and indexed by its first
	// entry's hash.
	var (
		pending  [][]byte
		sealed   int
		commands = []string{
			"WRITE /db/accounts 4096B", "WRITE /db/accounts 512B",
			"READ  /db/accounts", "WRITE /etc/passwd 1024B",
			"WRITE /db/accounts 512B", "DELETE /var/log/auth.log",
			"WRITE /db/orders 2048B", "READ  /db/orders",
			"WRITE /db/orders 512B", "DELETE /tmp/x",
			"WRITE /db/accounts 512B", "READ  /etc/passwd",
		}
	)
	seal := func() {
		if len(pending) == 0 {
			return
		}
		start, logN, err := dev.WriteLine(pending)
		if err != nil {
			log.Fatal(err)
		}
		li, err := dev.Heat(start, logN)
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.Insert(fossil.KeyOf(pending[0]), li.Start); err != nil {
			log.Fatal(err)
		}
		sealed++
		fmt.Printf("sealed log line %d at block %d (%d entries)\n", sealed, li.Start, len(pending))
		pending = nil
	}

	for i, cmd := range commands {
		entry := make([]byte, sero.BlockSize)
		copy(entry, fmt.Sprintf("seq=%04d cmd=%s", i, cmd))
		pending = append(pending, entry)
		if len(pending) == 3 {
			seal()
		}
	}
	seal()

	// The intruder got root and wants the DELETE of auth.log gone.
	// They rewrite the raw medium under the sealed line holding it.
	lines := dev.Lines()
	victim := lines[1] // the line containing seq 3..5
	forged := make([]byte, sero.BlockSize)
	copy(forged, "seq=0005 cmd=READ  /var/log/auth.log")
	bits := device.ForgedFrameBits(victim.Start+3, forged)
	med := dev.RawDevice().Medium()
	base := int(victim.Start+3) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	fmt.Println("intruder rewrote a sealed log entry on the raw medium")

	// The periodic self-check catches it.
	audit := dev.Audit()
	fmt.Print(audit.Summary())

	// The fossilized index still resolves untampered lines.
	first := make([]byte, sero.BlockSize)
	copy(first, "seq=0000 cmd=WRITE /db/accounts 4096B")
	if start, err := idx.Lookup(fossil.KeyOf(first)); err == nil {
		fmt.Printf("index lookup: first log line at block %d\n", start)
	}
	if heated := idx.HeatedNodes(); heated > 0 {
		fmt.Printf("index nodes heated so far: %d\n", heated)
	}
}
